// E19 — Incremental materialized views under concurrent TPC-C.
//
// Reports: (a) analytic latency for a CH-style per-warehouse aggregate
// with view routing off vs. on while closed-loop TPC-C clients mutate the
// fact table (the views-off run scans orderline; the views-on run reads
// the incrementally maintained backing table); (b) the OLTP cost of
// maintenance — committed txn/s with no view, a DEFERRED view folded in
// on the merge-daemon cadence, and a SYNC view maintained on the commit
// path.
//
// The analytic client is closed-loop on the main thread: issue, measure,
// repeat, until the driver finishes its timed run.

#include <benchmark/benchmark.h>

#include "bench_reporter.h"

OLTAP_BENCH_REPORTER("views");

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <chrono>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "workload/chbench.h"
#include "workload/driver.h"

namespace oltap {
namespace {

int64_t EnvInt(const char* name, int64_t def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoll(v) : def;
}

CHConfig BenchConfig() {
  CHConfig config;
  config.warehouses = 4;
  config.districts_per_warehouse = 10;
  config.customers_per_district = 100;
  config.items = 1000;
  config.initial_orders_per_district = 30;
  return config;
}

constexpr const char* kAnalyticQuery =
    "SELECT ol_w_id, COUNT(*) AS n, SUM(ol_quantity) AS qty "
    "FROM orderline GROUP BY ol_w_id";

constexpr const char* kViewDdl =
    "CREATE MATERIALIZED VIEW ol_by_wh DEFERRED AS "
    "SELECT ol_w_id, COUNT(*) AS n, SUM(ol_quantity) AS qty "
    "FROM orderline GROUP BY ol_w_id";

struct World {
  Database db;
  std::unique_ptr<CHBenchmark> bench;

  World() {
    bench = std::make_unique<CHBenchmark>(&db, BenchConfig());
    if (!bench->CreateTables().ok()) std::abort();
    if (!bench->Load().ok()) std::abort();
  }
};

DriverOptions BaseOptions() {
  DriverOptions opts;
  opts.duration_ms = EnvInt("OLTAP_VIEWS_DURATION_MS", 1000);
  opts.think_time_us = EnvInt("OLTAP_VIEWS_THINK_US", 2000);
  opts.oltp_workers = 4;
  opts.olap_workers = 0;  // the analytic client is the measuring thread
  opts.bind_home_warehouse = true;
  opts.merge_delta_threshold = 2048;
  opts.merge_interval_ms = 10;

  static const bool config_reported = [&opts] {
    auto* rep = bench::Reporter::Get();
    rep->Config("duration_ms", static_cast<double>(opts.duration_ms));
    rep->Config("think_time_us", static_cast<double>(opts.think_time_us));
    rep->Config("warehouses", 4);
    rep->Config("oltp_workers", 4);
    return true;
  }();
  (void)config_reported;
  return opts;
}

struct LatencySummary {
  double p50_us = 0, p95_us = 0;
  size_t queries = 0;
};

LatencySummary Summarize(std::vector<int64_t>* lat) {
  LatencySummary s;
  s.queries = lat->size();
  if (lat->empty()) return s;
  std::sort(lat->begin(), lat->end());
  s.p50_us = static_cast<double>((*lat)[lat->size() / 2]);
  s.p95_us = static_cast<double>((*lat)[lat->size() * 95 / 100]);
  return s;
}

// (a) Analytic latency, routing off (arg 0) vs. on (arg 1), under load.
void BM_ViewAnalyticLatency(benchmark::State& state) {
  const bool routed = state.range(0) != 0;
  const std::string suffix = routed ? ".views_on" : ".views_off";
  for (auto _ : state) {
    World world;
    if (!world.db.Execute(kViewDdl).ok()) std::abort();
    world.db.set_view_routing_enabled(routed);

    DriverOptions opts = BaseOptions();
    ConcurrentDriver driver(world.bench.get(), opts);
    DriverReport report;
    std::thread oltp([&] { report = driver.Run(); });

    std::vector<int64_t> lat_us;
    // Let the driver spin up before the first measurement.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const int64_t deadline =
        SystemClock::Get()->NowMicros() + opts.duration_ms * 1000;
    while (SystemClock::Get()->NowMicros() < deadline) {
      int64_t t0 = SystemClock::Get()->NowMicros();
      auto r = world.db.Execute(kAnalyticQuery);
      int64_t t1 = SystemClock::Get()->NowMicros();
      if (r.ok()) lat_us.push_back(t1 - t0);
    }
    oltp.join();

    LatencySummary s = Summarize(&lat_us);
    auto* rep = bench::Reporter::Get();
    rep->Metric("analytic_p50_us" + suffix, s.p50_us);
    rep->Metric("analytic_p95_us" + suffix, s.p95_us);
    rep->Metric("analytic_q" + suffix, static_cast<double>(s.queries));
    rep->Metric("oltp_txn_s" + suffix, report.oltp_txn_per_s);
    rep->Metric("freshness_lag_us" + suffix,
                static_cast<double>(report.freshness_lag_us));
    state.counters["analytic_p50_us"] = s.p50_us;
    state.counters["analytic_p95_us"] = s.p95_us;
    state.counters["oltp_txn_s"] = report.oltp_txn_per_s;
  }
}
BENCHMARK(BM_ViewAnalyticLatency)
    ->Arg(0)
    ->Arg(1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// (b) Maintenance overhead on the OLTP path: no view / DEFERRED / SYNC.
void BM_ViewMaintenanceOverhead(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const std::string suffix =
      mode == 0 ? ".no_view" : (mode == 1 ? ".deferred" : ".sync");
  for (auto _ : state) {
    World world;
    if (mode == 1) {
      if (!world.db.Execute(kViewDdl).ok()) std::abort();
    } else if (mode == 2) {
      if (!world.db
               .Execute(
                   "CREATE MATERIALIZED VIEW ol_by_wh SYNC AS "
                   "SELECT ol_w_id, COUNT(*) AS n, SUM(ol_quantity) AS qty "
                   "FROM orderline GROUP BY ol_w_id")
               .ok()) {
        std::abort();
      }
    }
    DriverOptions opts = BaseOptions();
    ConcurrentDriver driver(world.bench.get(), opts);
    DriverReport r = driver.Run();

    auto* rep = bench::Reporter::Get();
    rep->Metric("oltp_txn_s" + suffix, r.oltp_txn_per_s);
    rep->Metric("oltp_p99_us" + suffix,
                static_cast<double>(r.oltp_latency.p99_us));
    rep->Metric("abort_rate" + suffix, r.abort_rate);
    state.counters["oltp_txn_s"] = r.oltp_txn_per_s;
    state.counters["oltp_p99_us"] =
        static_cast<double>(r.oltp_latency.p99_us);
  }
}
BENCHMARK(BM_ViewMaintenanceOverhead)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace oltap
