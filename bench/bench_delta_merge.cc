// E3 — Delta/main lifecycle: differential files + LSM-style merge [29,16].
//
// Shape reproduced: analytic scan latency grows with the delta's share of
// the data (the delta is row-wise and predicate evaluation there is
// tuple-at-a-time), and merging restores columnar scan speed at a bulk
// reorganization cost that amortizes over subsequent scans. The merge-
// threshold sweep shows the freshness/throughput trade-off knob every
// surveyed engine exposes.

#include <benchmark/benchmark.h>

#include "bench_reporter.h"

OLTAP_BENCH_REPORTER("delta_merge");

#include <memory>

#include "common/rng.h"
#include "exec/executor.h"
#include "exec/operators.h"
#include "storage/table.h"

namespace oltap {
namespace {

Schema BenchSchema() {
  return SchemaBuilder()
      .AddInt64("id", false)
      .AddInt64("k", false)
      .AddInt64("v", false)
      .SetKey({"id"})
      .Build();
}

std::unique_ptr<Table> BuildTable(size_t main_rows, size_t delta_rows) {
  auto table = std::make_unique<Table>("t", BenchSchema(),
                                       TableFormat::kColumn);
  Rng rng(1);
  std::vector<Row> rows;
  rows.reserve(main_rows);
  for (size_t i = 0; i < main_rows; ++i) {
    rows.push_back(Row{Value::Int64(static_cast<int64_t>(i)),
                       Value::Int64(rng.UniformRange(0, 999)),
                       Value::Int64(rng.UniformRange(0, 1000000))});
  }
  if (main_rows > 0) {
    Status st = table->BulkLoadToMain(rows, 1);
    if (!st.ok()) std::abort();
  }
  for (size_t i = 0; i < delta_rows; ++i) {
    Status st = table->InsertCommitted(
        Row{Value::Int64(static_cast<int64_t>(main_rows + i)),
            Value::Int64(rng.UniformRange(0, 999)),
            Value::Int64(rng.UniformRange(0, 1000000))},
        2);
    if (!st.ok()) std::abort();
  }
  return table;
}

double ScanQuery(Table* table) {
  ScanOp scan(table, 100,
              Expr::Compare(CompareOp::kLt,
                            Expr::Column(1, ValueType::kInt64),
                            Expr::Constant(Value::Int64(100))));
  std::vector<Row> rows = CollectRows(&scan);
  double sum = 0;
  for (const Row& r : rows) sum += r[2].AsDouble();
  return sum;
}

// Scan latency as the delta share grows: arg = delta rows per 1M total.
void BM_ScanWithDeltaShare(benchmark::State& state) {
  constexpr size_t kTotal = 1 << 20;
  size_t delta = static_cast<size_t>(state.range(0));
  static std::map<int64_t, std::unique_ptr<Table>>* cache =
      new std::map<int64_t, std::unique_ptr<Table>>();
  auto it = cache->find(state.range(0));
  if (it == cache->end()) {
    it = cache->emplace(state.range(0), BuildTable(kTotal - delta, delta))
             .first;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScanQuery(it->second.get()));
  }
  state.SetItemsProcessed(state.iterations() * kTotal);
  state.counters["delta_rows"] = static_cast<double>(delta);
}

// Ingest throughput into the delta (the write-optimized path).
void BM_DeltaIngest(benchmark::State& state) {
  auto table = BuildTable(0, 0);
  Rng rng(9);
  int64_t id = 0;
  for (auto _ : state) {
    Status st = table->InsertCommitted(
        Row{Value::Int64(id++), Value::Int64(rng.UniformRange(0, 999)),
            Value::Int64(1)},
        3);
    benchmark::DoNotOptimize(st.ok());
  }
  state.SetItemsProcessed(state.iterations());
}

// Cost of one merge as a function of delta size (main fixed at 1M rows).
void BM_MergeCost(benchmark::State& state) {
  constexpr size_t kMain = 1 << 20;
  size_t delta = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto table = BuildTable(kMain, delta);
    state.ResumeTiming();
    benchmark::DoNotOptimize(table->MergeDelta(100, 100));
  }
  state.SetItemsProcessed(state.iterations() * (kMain + delta));
}

// End-to-end freshness trade-off: ingest 200k rows with a merge every K
// rows, measuring total wall time including periodic analytic scans.
// Small K = fresh columnar data, frequent merge cost; large K = cheap
// ingest, slow scans.
void BM_IngestScanMergeEvery(benchmark::State& state) {
  size_t merge_every = static_cast<size_t>(state.range(0));
  constexpr size_t kIngest = 200000;
  constexpr size_t kScanEvery = 20000;
  for (auto _ : state) {
    state.PauseTiming();
    auto table = BuildTable(0, 0);
    Rng rng(4);
    state.ResumeTiming();
    Timestamp ts = 10;
    for (size_t i = 0; i < kIngest; ++i) {
      Status st = table->InsertCommitted(
          Row{Value::Int64(static_cast<int64_t>(i)),
              Value::Int64(rng.UniformRange(0, 999)), Value::Int64(1)},
          ts++);
      benchmark::DoNotOptimize(st.ok());
      if ((i + 1) % merge_every == 0) table->MergeDelta(ts, ts);
      if ((i + 1) % kScanEvery == 0) {
        benchmark::DoNotOptimize(ScanQuery(table.get()));
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * kIngest);
  state.counters["merge_every"] = static_cast<double>(merge_every);
}

BENCHMARK(BM_ScanWithDeltaShare)
    ->Arg(0)
    ->Arg(1 << 12)
    ->Arg(1 << 15)
    ->Arg(1 << 18)
    ->Arg(1 << 20);
BENCHMARK(BM_DeltaIngest);
BENCHMARK(BM_MergeCost)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 19)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IngestScanMergeEvery)
    ->Arg(10000)
    ->Arg(50000)
    ->Arg(200000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace oltap
