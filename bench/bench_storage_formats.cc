// E1 — Physical layout: row (NSM) vs. column (DSM) vs. PAX.
//
// Reproduces the tutorial's foundational claim (§4): columnar layouts win
// analytic scans by touching only the needed attributes; row layouts win
// point access (full-tuple reconstruction touches one cache line, not one
// per column). PAX sits between: columnar scan locality inside a page,
// page-local tuple reconstruction.
//
// Expected shape: SumColumn/SumWhere: column ≈ pax >> row.
//                 GetRow: row >> column (≈ pax for small schemas).

#include <benchmark/benchmark.h>

#include "bench_reporter.h"

OLTAP_BENCH_REPORTER("storage_formats");

#include "common/rng.h"
#include "storage/pax_page.h"

namespace oltap {
namespace {

constexpr size_t kRows = 1 << 20;  // 1M rows
constexpr size_t kCols = 8;

template <typename Layout>
const Layout& SharedTable() {
  static const Layout* table = [] {
    auto* t = new Layout(kCols);
    Rng rng(1);
    int64_t row[kCols];
    for (size_t r = 0; r < kRows; ++r) {
      for (size_t c = 0; c < kCols; ++c) {
        row[c] = rng.UniformRange(0, 1000);
      }
      t->AppendRow(row);
    }
    return t;
  }();
  return *table;
}

template <typename Layout>
void BM_SumColumn(benchmark::State& state) {
  const Layout& t = SharedTable<Layout>();
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.SumColumn(3));
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}

template <typename Layout>
void BM_SumWhere(benchmark::State& state) {
  const Layout& t = SharedTable<Layout>();
  int64_t threshold = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.SumWhere(0, threshold, 3));
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}

template <typename Layout>
void BM_PointGetRow(benchmark::State& state) {
  const Layout& t = SharedTable<Layout>();
  Rng rng(7);
  int64_t out[kCols];
  for (auto _ : state) {
    t.GetRow(rng.Uniform(kRows), out);
    benchmark::DoNotOptimize(out[0]);
  }
  state.SetItemsProcessed(state.iterations());
}

template <typename Layout>
void BM_PointUpdate(benchmark::State& state) {
  // Updates mutate shared state; give each run its own copy.
  static Layout* t = [] {
    auto* copy = new Layout(kCols);
    Rng rng(2);
    int64_t row[kCols];
    for (size_t r = 0; r < kRows; ++r) {
      for (size_t c = 0; c < kCols; ++c) row[c] = rng.UniformRange(0, 1000);
      copy->AppendRow(row);
    }
    return copy;
  }();
  Rng rng(8);
  for (auto _ : state) {
    t->Update(rng.Uniform(kRows), rng.Uniform(kCols),
              static_cast<int64_t>(rng.Uniform(1000)));
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK_TEMPLATE(BM_SumColumn, RowLayout);
BENCHMARK_TEMPLATE(BM_SumColumn, ColumnLayout);
BENCHMARK_TEMPLATE(BM_SumColumn, PaxLayout);

BENCHMARK_TEMPLATE(BM_SumWhere, RowLayout)->Arg(100)->Arg(500)->Arg(900);
BENCHMARK_TEMPLATE(BM_SumWhere, ColumnLayout)->Arg(100)->Arg(500)->Arg(900);
BENCHMARK_TEMPLATE(BM_SumWhere, PaxLayout)->Arg(100)->Arg(500)->Arg(900);

BENCHMARK_TEMPLATE(BM_PointGetRow, RowLayout);
BENCHMARK_TEMPLATE(BM_PointGetRow, ColumnLayout);
BENCHMARK_TEMPLATE(BM_PointGetRow, PaxLayout);

BENCHMARK_TEMPLATE(BM_PointUpdate, RowLayout);
BENCHMARK_TEMPLATE(BM_PointUpdate, ColumnLayout);
BENCHMARK_TEMPLATE(BM_PointUpdate, PaxLayout);

// Column-grouped hybrid [17]: a scan whose filter and aggregate columns
// share a group runs at near-columnar speed; crossing groups overfetches
// the co-grouped bystander columns.
const GroupedLayout& SharedGrouped() {
  static const GroupedLayout* table = [] {
    // Columns 0 and 3 are co-accessed (same group); the rest ride along
    // in a second, wide group.
    auto* t = new GroupedLayout(kCols, {{0, 3}, {1, 2, 4, 5, 6, 7}});
    Rng rng(1);
    int64_t row[kCols];
    for (size_t r = 0; r < kRows; ++r) {
      for (size_t c = 0; c < kCols; ++c) row[c] = rng.UniformRange(0, 1000);
      t->AppendRow(row);
    }
    return t;
  }();
  return *table;
}

void BM_GroupedSumWhereSameGroup(benchmark::State& state) {
  const GroupedLayout& t = SharedGrouped();
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.SumWhere(0, 500, 3));  // both in group 0
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}

void BM_GroupedSumWhereCrossGroup(benchmark::State& state) {
  const GroupedLayout& t = SharedGrouped();
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.SumWhere(0, 500, 4));  // spans both groups
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}

void BM_GroupedPointGetRow(benchmark::State& state) {
  const GroupedLayout& t = SharedGrouped();
  Rng rng(7);
  int64_t out[kCols];
  for (auto _ : state) {
    t.GetRow(rng.Uniform(kRows), out);
    benchmark::DoNotOptimize(out[0]);
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_GroupedSumWhereSameGroup);
BENCHMARK(BM_GroupedSumWhereCrossGroup);
BENCHMARK(BM_GroupedPointGetRow);

}  // namespace
}  // namespace oltap
