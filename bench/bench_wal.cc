// E18 — Group-commit WAL: (a) sustained commit throughput at 8 concurrent
// committers, per-commit fsync vs. the dedicated log writer across persist
// intervals (the group-commit knob: 0 = fsync as soon as the queue drains,
// larger = wait for a fuller batch); (b) recovery wall time, serial replay
// vs. table-partitioned parallel replay, as the log grows.
//
// The durability device is a real file (one fsync syscall per record for
// the baseline, one per batch for the writer), so (a) measures exactly
// what group commit amortizes. Counts are env-tunable:
// OLTAP_WAL_COMMITS_PER_CLIENT (default 1500) and OLTAP_WAL_REPLAY_SCALE
// (multiplies the replay log sizes, default 1).

#include <benchmark/benchmark.h>

#include "bench_reporter.h"

OLTAP_BENCH_REPORTER("wal");

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "storage/catalog.h"
#include "txn/log_writer.h"
#include "txn/transaction_manager.h"
#include "txn/wal.h"

namespace oltap {
namespace {

constexpr int kClients = 8;

int64_t EnvInt(const char* name, int64_t def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoll(v) : def;
}

int64_t CommitsPerClient() {
  static const int64_t n = EnvInt("OLTAP_WAL_COMMITS_PER_CLIENT", 1500);
  return n;
}

Schema BenchSchema() {
  return SchemaBuilder()
      .AddInt64("id", false)
      .AddString("payload")
      .SetKey({"id"})
      .Build();
}

std::unique_ptr<Catalog> MakeCatalog(int tables) {
  auto catalog = std::make_unique<Catalog>();
  for (int t = 0; t < tables; ++t) {
    if (!catalog
             ->CreateTable("t" + std::to_string(t), BenchSchema(),
                           TableFormat::kColumn)
             .ok()) {
      std::abort();
    }
  }
  return catalog;
}

Row MakeRow(int64_t id) {
  return Row{Value::Int64(id), Value::String("payload-" + std::to_string(id))};
}

std::string WalPath(const char* tag) {
  return "/tmp/oltap_bench_wal_" + std::string(tag) + ".log";
}

std::unique_ptr<Wal> OpenBenchWal(const std::string& path) {
  std::remove(path.c_str());
  Wal::Options opts;
  opts.fsync_on_commit = true;
  auto wal = Wal::OpenFile(path, opts);
  if (!wal.ok()) std::abort();
  return std::move(*wal);
}

// 8 closed-loop committers inserting disjoint keys through the
// TransactionManager. `persist_interval_us < 0` = no log writer: every
// commit pays its own fsync.
double RunCommitStorm(int64_t persist_interval_us, size_t max_batch,
                      const char* tag) {
  std::string path = WalPath(tag);
  auto wal = OpenBenchWal(path);
  auto catalog = MakeCatalog(1);
  TransactionManager tm(catalog.get(), wal.get());
  Table* table = catalog->GetTable("t0");

  std::unique_ptr<LogWriter> writer;
  if (persist_interval_us >= 0) {
    LogWriter::Options opts;
    opts.max_batch = max_batch;
    opts.persist_interval_us = persist_interval_us;
    writer = std::make_unique<LogWriter>(wal.get(), opts);
    tm.SetLogWriter(writer.get());
  }

  const int64_t per_client = CommitsPerClient();
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int64_t i = 0; i < per_client; ++i) {
        auto txn = tm.Begin();
        if (!txn->Insert(table, MakeRow(c * per_client + i)).ok()) std::abort();
        if (!tm.Commit(txn.get()).ok()) std::abort();
      }
    });
  }
  for (auto& t : clients) t.join();
  double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              start)
                    .count();

  if (writer != nullptr) {
    tm.SetLogWriter(nullptr);
    writer->Stop();
  }
  std::remove(path.c_str());
  return static_cast<double>(kClients * per_client) / secs;
}

// (a) Commit throughput: range(0) is the persist interval in us, -1 for
// the per-commit-fsync baseline.
void BM_WalCommitThroughput(benchmark::State& state) {
  int64_t interval_us = state.range(0);
  std::string suffix = interval_us < 0
                           ? ".per_commit_fsync"
                           : ".group_" + std::to_string(interval_us) + "us";
  for (auto _ : state) {
    double commits_s = RunCommitStorm(interval_us, 64, "storm");
    bench::Reporter::Get()->Metric("commit_s" + suffix, commits_s);
    state.counters["commit_s"] = commits_s;
  }
}
BENCHMARK(BM_WalCommitThroughput)
    ->Arg(-1)   // baseline: one fsync per commit
    ->Arg(0)    // group commit, fsync as soon as the queue drains
    ->Arg(50)
    ->Arg(100)
    ->Arg(250)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Builds a multi-table log of `txns` single-op commits spread round-robin
// over `tables` tables (the shape parallel replay partitions well).
std::string BuildLog(int64_t txns, int tables) {
  Wal wal;
  for (int64_t i = 0; i < txns; ++i) {
    WalOp op;
    op.kind = WalOp::kInsert;
    op.table = "t" + std::to_string(i % tables);
    op.row = MakeRow(i);
    if (!wal.LogCommit(i + 1, i + 1, {op}).ok()) std::abort();
  }
  return wal.buffer();
}

// CPU consumed by the calling thread — for parallel replay this is the
// recovery critical path (decode + its share of coordination) with the
// partition applies offloaded to the pool. On a few-core host wall times
// tie while this metric shows the offload; on multi-core hosts wall time
// follows it (see EXPERIMENTS.md E18).
double ThreadCpuSeconds() {
#if defined(__linux__)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
  }
#endif
  return 0;
}

// (b) Recovery: serial vs. parallel partitioned replay. range(0) = txns
// in the log (scaled by OLTAP_WAL_REPLAY_SCALE), range(1) = 1 for
// parallel.
void BM_WalRecovery(benchmark::State& state) {
  const int kTables = 8;
  int64_t txns = state.range(0) * EnvInt("OLTAP_WAL_REPLAY_SCALE", 1);
  bool parallel = state.range(1) != 0;
  std::string log = BuildLog(txns, kTables);
  ThreadPool pool(4);

  double secs = 0, cpu_secs = 0;
  for (auto _ : state) {
    auto catalog = MakeCatalog(kTables);
    auto start = std::chrono::steady_clock::now();
    double cpu_start = ThreadCpuSeconds();
    auto stats = parallel
                     ? Wal::ReplayParallel(log, catalog.get(), &pool)
                     : Wal::Replay(log, catalog.get());
    cpu_secs = ThreadCpuSeconds() - cpu_start;
    secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
               .count();
    if (!stats.ok() || stats->txns_applied != static_cast<size_t>(txns)) {
      std::abort();
    }
  }
  std::string suffix = (parallel ? ".parallel." : ".serial.") +
                       std::to_string(txns);
  bench::Reporter::Get()->Metric("recovery_s" + suffix, secs);
  bench::Reporter::Get()->Metric("recovery_txn_s" + suffix,
                                 static_cast<double>(txns) / secs);
  bench::Reporter::Get()->Metric("recovery_critical_path_s" + suffix,
                                 cpu_secs);
  state.counters["txn_s"] = static_cast<double>(txns) / secs;
  state.counters["crit_s"] = cpu_secs;
}
BENCHMARK(BM_WalRecovery)
    ->Args({10'000, 0})
    ->Args({10'000, 1})
    ->Args({40'000, 0})
    ->Args({40'000, 1})
    ->Args({160'000, 0})
    ->Args({160'000, 1})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace oltap
