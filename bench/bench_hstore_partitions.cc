// E11 — H-Store-style partitioned serial execution [38]: "pre-partition
// the database into conflict-free partitions and run transactions in
// serial mode on each partition".
//
// Throughput vs. the multi-partition transaction fraction. Expected shape:
// at 0% multi-partition the executor is embarrassing-parallel (no locks,
// no CC) and beats a global-lock baseline by ~#partitions; every added
// percent of multi-partition transactions stalls whole partition sets at a
// rendezvous, and throughput falls off the famous cliff.

#include <benchmark/benchmark.h>

#include "bench_reporter.h"

OLTAP_BENCH_REPORTER("hstore_partitions");

#include <future>
#include <vector>

#include "common/rng.h"
#include "txn/hstore_executor.h"

namespace oltap {
namespace {

constexpr int kPartitions = 8;
constexpr int kTxns = 8000;
constexpr int kWorkUnits = 400;  // per-transaction busy work

// Per-partition "database": a counter array only its owner thread touches.
struct PartitionState {
  alignas(64) int64_t counter = 0;
};

int64_t BusyWork(int64_t seed) {
  int64_t x = seed;
  for (int i = 0; i < kWorkUnits; ++i) x = x * 6364136223846793005 + 1;
  return x;
}

void BM_HStoreMultiPartitionFraction(benchmark::State& state) {
  double multi_fraction = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    HStoreExecutor exec(kPartitions);
    std::vector<PartitionState> parts(kPartitions);
    Rng rng(1);
    std::vector<std::future<Status>> futures;
    futures.reserve(kTxns);
    for (int i = 0; i < kTxns; ++i) {
      if (rng.Bernoulli(multi_fraction)) {
        // Multi-partition: touch two random partitions.
        int a = static_cast<int>(rng.Uniform(kPartitions));
        int b = static_cast<int>(rng.Uniform(kPartitions));
        futures.push_back(exec.Submit({a, b}, [&parts, a, b] {
          parts[a].counter += BusyWork(a) & 1;
          parts[b].counter += BusyWork(b) & 1;
          return Status::OK();
        }));
      } else {
        int p = static_cast<int>(rng.Uniform(kPartitions));
        futures.push_back(exec.Submit({p}, [&parts, p] {
          parts[p].counter += BusyWork(p) & 1;
          return Status::OK();
        }));
      }
    }
    for (auto& f : futures) f.get();
    benchmark::DoNotOptimize(parts[0].counter);
  }
  state.SetItemsProcessed(state.iterations() * kTxns);
  state.counters["multi_pct"] = static_cast<double>(state.range(0));
}

// Baseline: one global lock serializing every transaction (the "single
// serial machine" an unpartitioned serial engine degenerates to).
void BM_GlobalSerialBaseline(benchmark::State& state) {
  for (auto _ : state) {
    HStoreExecutor exec(1);
    PartitionState part;
    std::vector<std::future<Status>> futures;
    futures.reserve(kTxns);
    for (int i = 0; i < kTxns; ++i) {
      futures.push_back(exec.Submit({0}, [&part] {
        part.counter += BusyWork(0) & 1;
        return Status::OK();
      }));
    }
    for (auto& f : futures) f.get();
    benchmark::DoNotOptimize(part.counter);
  }
  state.SetItemsProcessed(state.iterations() * kTxns);
}

BENCHMARK(BM_HStoreMultiPartitionFraction)
    ->Arg(0)
    ->Arg(1)
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Arg(50)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GlobalSerialBaseline)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace oltap
