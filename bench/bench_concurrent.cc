// E17 — Concurrent end-to-end driver: N closed-loop TPC-C clients + M CH
// analytic clients through one WorkloadManager, merge daemon live.
//
// Reports: (a) worker scaling — aggregate committed txn/s and per-class
// p50/p99/p999 as OLTP client count grows with a fixed analytic load;
// (b) scheduling-policy sweep at the full client count — how FIFO vs.
// OLTP-priority vs. reserved workers trade OLTP tail latency against
// analytic throughput; plus delta freshness lag and abort rate for every
// configuration.
//
// Clients are closed-loop with TPC-C-style think time (env-tunable): each
// client keys in, waits for its transaction, thinks, repeats. Throughput
// therefore scales with client count through request overlap even on a
// single-core host (see EXPERIMENTS.md E17 for the methodology note).

#include <benchmark/benchmark.h>

#include "bench_reporter.h"

OLTAP_BENCH_REPORTER("concurrent");

#include <cstdlib>
#include <memory>
#include <string>

#include "workload/chbench.h"
#include "workload/driver.h"

namespace oltap {
namespace {

int64_t EnvInt(const char* name, int64_t def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoll(v) : def;
}

CHConfig BenchConfig() {
  CHConfig config;
  config.warehouses = 8;  // one home warehouse per client at full scale
  config.districts_per_warehouse = 10;
  config.customers_per_district = 100;
  config.items = 1000;
  config.initial_orders_per_district = 30;
  return config;
}

struct World {
  Database db;
  std::unique_ptr<CHBenchmark> bench;

  World() {
    bench = std::make_unique<CHBenchmark>(&db, BenchConfig());
    if (!bench->CreateTables().ok()) std::abort();
    if (!bench->Load().ok()) std::abort();
  }
};

DriverOptions BaseOptions() {
  DriverOptions opts;
  opts.duration_ms = EnvInt("OLTAP_CONC_DURATION_MS", 1000);
  opts.think_time_us = EnvInt("OLTAP_CONC_THINK_US", 2000);
  opts.bind_home_warehouse = true;
  opts.merge_delta_threshold = 2048;
  opts.merge_interval_ms = 10;

  static const bool config_reported = [&opts] {
    auto* rep = bench::Reporter::Get();
    rep->Config("duration_ms", static_cast<double>(opts.duration_ms));
    rep->Config("think_time_us", static_cast<double>(opts.think_time_us));
    rep->Config("warehouses", 8);
    rep->Config("olap_workers", 2);
    return true;
  }();
  (void)config_reported;
  return opts;
}

void ReportRun(const std::string& suffix, const DriverReport& r,
               benchmark::State& state) {
  auto* rep = bench::Reporter::Get();
  rep->Metric("oltp_txn_s" + suffix, r.oltp_txn_per_s);
  rep->Metric("olap_q_s" + suffix, r.olap_queries_per_s);
  rep->Metric("oltp_p50_us" + suffix, r.oltp_latency.p50_us);
  rep->Metric("oltp_p99_us" + suffix, r.oltp_latency.p99_us);
  rep->Metric("oltp_p999_us" + suffix, r.oltp_latency.p999_us);
  rep->Metric("olap_p50_us" + suffix, r.olap_latency.p50_us);
  rep->Metric("olap_p99_us" + suffix, r.olap_latency.p99_us);
  rep->Metric("olap_p999_us" + suffix, r.olap_latency.p999_us);
  rep->Metric("abort_rate" + suffix, r.abort_rate);
  rep->Metric("oltp_failed" + suffix, static_cast<double>(r.oltp_failed));
  rep->Metric("freshness_lag_us" + suffix,
              static_cast<double>(r.freshness_lag_us));
  rep->Metric("merges" + suffix, static_cast<double>(r.merges));

  state.counters["oltp_txn_s"] = r.oltp_txn_per_s;
  state.counters["olap_q_s"] = r.olap_queries_per_s;
  state.counters["oltp_p99_us"] = static_cast<double>(r.oltp_latency.p99_us);
  state.counters["oltp_p999_us"] = static_cast<double>(r.oltp_latency.p999_us);
  state.counters["abort_rate"] = r.abort_rate;
}

// (a) OLTP client scaling with 2 analytic clients riding along.
void BM_ConcurrentWorkerScaling(benchmark::State& state) {
  size_t oltp = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    World world;
    DriverOptions opts = BaseOptions();
    opts.oltp_workers = oltp;
    opts.olap_workers = 2;
    opts.policy = SchedulingPolicy::kOltpPriority;
    ConcurrentDriver driver(world.bench.get(), opts);
    DriverReport r = driver.Run();
    ReportRun(".w" + std::to_string(oltp), r, state);
  }
}
BENCHMARK(BM_ConcurrentWorkerScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// (b) Scheduling policies at full load (8 OLTP + 2 OLAP clients).
void BM_ConcurrentPolicySweep(benchmark::State& state) {
  auto policy = static_cast<SchedulingPolicy>(state.range(0));
  for (auto _ : state) {
    World world;
    DriverOptions opts = BaseOptions();
    opts.oltp_workers = 8;
    opts.olap_workers = 2;
    opts.policy = policy;
    ConcurrentDriver driver(world.bench.get(), opts);
    DriverReport r = driver.Run();
    ReportRun(std::string(".") + SchedulingPolicyToString(policy), r, state);
  }
}
BENCHMARK(BM_ConcurrentPolicySweep)
    ->Arg(0)  // fifo
    ->Arg(1)  // oltp_priority
    ->Arg(2)  // reserved_workers
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace oltap
