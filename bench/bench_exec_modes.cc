// E7 — Execution models: tuple-at-a-time interpretation vs. vectorized
// primitives vs. fused (codegen-style) loops (HyPer [28], Impala [41],
// MonetDB lineage).
//
// SELECT SUM(v) FROM t WHERE k < c over a 4M-row columnar fragment, at
// several selectivities. Expected shape: vectorized and fused beat the
// tuple interpreter by one to two orders of magnitude (no per-tuple
// materialization, no expression-tree walking, no Value boxing); the
// vectorized/fused ordering flips with selectivity (the selection-vector
// materialization the vectorized engine pays is wasted at high
// selectivity, while fused evaluates the predicate branch per row).

#include <benchmark/benchmark.h>

#include "bench_reporter.h"

OLTAP_BENCH_REPORTER("exec_modes");

#include <memory>

#include "common/rng.h"
#include "exec/executor.h"
#include "storage/table.h"

namespace oltap {
namespace {

constexpr size_t kRows = 4 << 20;

const MainFragment& SharedFragment() {
  static std::shared_ptr<const MainFragment>* frag = [] {
    Schema schema = SchemaBuilder()
                        .AddInt64("id", false)
                        .AddInt64("k", false)
                        .AddInt64("v", false)
                        .SetKey({"id"})
                        .Build();
    auto* table = new Table("t", schema, TableFormat::kColumn);
    Rng rng(1);
    std::vector<Row> rows;
    rows.reserve(kRows);
    for (size_t i = 0; i < kRows; ++i) {
      rows.push_back(Row{Value::Int64(static_cast<int64_t>(i)),
                         Value::Int64(rng.UniformRange(0, 99)),
                         Value::Int64(rng.UniformRange(0, 1000))});
    }
    if (!table->BulkLoadToMain(rows, 1).ok()) std::abort();
    return new std::shared_ptr<const MainFragment>(
        table->GetColumnSnapshot(1)->main);
  }();
  return **frag;
}

void RunMode(benchmark::State& state, ExecutionMode mode) {
  const MainFragment& main = SharedFragment();
  SimpleAggQuery q;
  q.filter_col = 1;
  q.op = CompareOp::kLt;
  q.constant = state.range(0);  // selectivity % (k uniform in [0,100))
  q.agg_col = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunSimpleAgg(main, q, mode));
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  state.counters["selectivity_pct"] = static_cast<double>(state.range(0));
  state.SetLabel(ExecutionModeToString(mode));
}

void BM_TupleAtATime(benchmark::State& state) {
  RunMode(state, ExecutionMode::kTupleAtATime);
}
void BM_Vectorized(benchmark::State& state) {
  RunMode(state, ExecutionMode::kVectorized);
}
void BM_Fused(benchmark::State& state) {
  RunMode(state, ExecutionMode::kFused);
}

BENCHMARK(BM_TupleAtATime)->Arg(1)->Arg(50)->Arg(99)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Vectorized)->Arg(1)->Arg(50)->Arg(99)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fused)->Arg(1)->Arg(50)->Arg(99)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace oltap
