// E15 — Robustness under chaos: throughput and failure behavior of the
// replicated engine on an adversarial fabric, with and without the
// fault-tolerance machinery (retry + circuit breaker + leader failover),
// and OLTP latency under an OLAP flood with and without load shedding.
//
// Expected shape: on a faulty fabric the fault-oblivious configuration
// loses a large fraction of writes outright (every error is surfaced to
// the client with no recourse), while failover+retry recovers almost all
// of them at a modest throughput cost; with admission control on, OLTP
// p99 stays bounded during an OLAP flood because excess analytics are
// shed (kResourceExhausted) or degraded instead of queueing ahead of
// transactions. The active fault schedule (seed, drop rates, partitions)
// is recorded in BENCH_chaos.json so every number stays attributable to
// its exact chaos configuration.

#include <benchmark/benchmark.h>

#include "bench_reporter.h"

OLTAP_BENCH_REPORTER("chaos");

#include <atomic>
#include <thread>
#include <vector>

#include "dist/chaos.h"
#include "dist/partition.h"
#include "sched/workload_manager.h"

namespace oltap {
namespace {

constexpr int kNodes = 4;
constexpr uint64_t kChaosSeed = 42;
constexpr double kDropProbability = 0.02;
constexpr int kChaosRounds = 8;

Schema BenchSchema() {
  return SchemaBuilder()
      .AddInt64("id", false)
      .AddInt64("v", false)
      .SetKey({"id"})
      .Build();
}

DistributedEngine::Options EngineOptions(bool fault_tolerant) {
  DistributedEngine::Options opts;
  opts.num_nodes = kNodes;
  opts.num_partitions = 16;
  opts.replication_factor = 3;
  opts.net.base_latency_us = 20;
  opts.net.per_kb_us = 1;
  if (fault_tolerant) {
    opts.rpc_retry.max_attempts = 3;
    opts.rpc_retry.initial_backoff_us = 10;
    opts.rpc_retry.max_backoff_us = 100;
    opts.rpc_retry.deadline_us = 20'000;
    opts.breaker.failure_threshold = 4;
    opts.breaker.open_cooldown_us = 0;
    opts.max_read_staleness = 1'000'000'000;
  } else {
    opts.rpc_retry.max_attempts = 1;  // every fault surfaces immediately
  }
  return opts;
}

ChaosPlan MakePlan() {
  ChaosPlan::Options opts;
  opts.num_nodes = kNodes;
  opts.rounds = kChaosRounds;
  opts.seed = kChaosSeed;
  opts.max_drop_probability = kDropProbability;
  opts.max_jitter_us = 50;
  return ChaosPlan(opts);
}

void RecordChaosConfig(const ChaosPlan& plan) {
  static const bool once = [&] {
    auto* r = bench::Reporter::Get();
    r->Config("chaos_seed", static_cast<double>(kChaosSeed));
    r->Config("chaos_rounds", static_cast<double>(kChaosRounds));
    r->Config("max_drop_probability", kDropProbability);
    r->Config("partition_schedule", plan.Describe());
    return true;
  }();
  (void)once;
}

// Write throughput + acknowledged-write ratio across a full chaos
// schedule. arg 0: 1 = failover/retry/breaker on, 0 = fault-oblivious.
void BM_ChaosIngest(benchmark::State& state) {
  const bool fault_tolerant = state.range(0) == 1;
  ChaosPlan plan = MakePlan();
  RecordChaosConfig(plan);
  uint64_t ok_total = 0, attempted_total = 0;
  for (auto _ : state) {
    state.PauseTiming();
    DistributedEngine engine(BenchSchema(), EngineOptions(fault_tolerant));
    state.ResumeTiming();
    std::atomic<int64_t> next_id{0};
    std::atomic<uint64_t> ok{0};
    for (int r = 0; r < plan.num_rounds(); ++r) {
      plan.Install(r, engine.network());
      std::vector<std::thread> clients;
      for (int c = 0; c < kNodes; ++c) {
        clients.emplace_back([&, c] {
          for (int i = 0; i < 100; ++i) {
            int64_t id = next_id.fetch_add(1);
            if (engine
                    .InsertFrom(c, Row{Value::Int64(id), Value::Int64(1)})
                    .ok()) {
              ok.fetch_add(1, std::memory_order_relaxed);
            }
          }
        });
      }
      for (auto& c : clients) c.join();
      plan.Restore(r, engine.network());
      engine.CatchUpReplicas();
    }
    ok_total += ok.load();
    attempted_total += static_cast<uint64_t>(next_id.load());
  }
  state.SetItemsProcessed(static_cast<int64_t>(ok_total));
  double ack_ratio = attempted_total == 0
                         ? 0.0
                         : static_cast<double>(ok_total) /
                               static_cast<double>(attempted_total);
  state.counters["ack_ratio"] = ack_ratio;
  state.counters["fault_tolerant"] = fault_tolerant ? 1 : 0;
  bench::Reporter::Get()->Metric(
      fault_tolerant ? "ack_ratio_failover" : "ack_ratio_oblivious",
      ack_ratio);
}

// OLTP p99 under an OLAP flood on a healthy fabric. arg 0: 1 = admission
// control + degradation on, 0 = unbounded queues.
void BM_OverloadOltpP99(benchmark::State& state) {
  const bool protected_mode = state.range(0) == 1;
  for (auto _ : state) {
    state.PauseTiming();
    DistributedEngine engine(BenchSchema(), EngineOptions(true));
    for (int64_t i = 0; i < 20'000; ++i) {
      engine.InsertFrom(0, Row{Value::Int64(i), Value::Int64(1)}).ok();
    }
    WorkloadManager::Options wopts;
    wopts.num_workers = 4;
    wopts.policy = SchedulingPolicy::kOltpPriority;
    if (protected_mode) {
      wopts.olap_admission_limit = 8;
      wopts.olap_degrade_threshold = 4;
      wopts.degraded_batch_rows = 512;
    }
    WorkloadManager wm(wopts);
    state.ResumeTiming();

    std::vector<WorkloadManager::Submission> subs;
    std::atomic<int64_t> next_id{20'000};
    for (int q = 0; q < 64; ++q) {
      subs.push_back(wm.SubmitBudgeted(
          QueryClass::kOlap, WorkloadManager::QuerySpec{},
          [&](const CancellationToken&, const WorkloadManager::QueryGrant&) {
            double sum = engine.SumWhere(1, CompareOp::kGe, 0, 1);
            benchmark::DoNotOptimize(sum);
            return Status::OK();
          }));
    }
    for (int t = 0; t < 200; ++t) {
      subs.push_back(wm.SubmitBudgeted(
          QueryClass::kOltp, WorkloadManager::QuerySpec{},
          [&](const CancellationToken&, const WorkloadManager::QueryGrant&) {
            int64_t id = next_id.fetch_add(1);
            return engine.InsertFrom(static_cast<int>(id % kNodes),
                                     Row{Value::Int64(id), Value::Int64(1)});
          }));
    }
    for (auto& s : subs) s.done.get();
    state.PauseTiming();
    LatencySummary oltp = wm.StatsFor(QueryClass::kOltp);
    state.counters["oltp_p99_us"] = static_cast<double>(oltp.p99_us);
    state.counters["olap_shed"] = static_cast<double>(wm.shed());
    state.counters["olap_degraded"] =
        static_cast<double>(wm.degraded_admissions());
    bench::Reporter::Get()->Metric(protected_mode
                                       ? "oltp_p99_us_shedding"
                                       : "oltp_p99_us_unprotected",
                                   static_cast<double>(oltp.p99_us));
    state.ResumeTiming();
  }
  state.counters["protected"] = protected_mode ? 1 : 0;
}

BENCHMARK(BM_ChaosIngest)->Arg(0)->Arg(1)
    ->UseRealTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OverloadOltpP99)->Arg(0)->Arg(1)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace oltap
