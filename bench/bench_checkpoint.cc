// E20 — Online checkpointing: (a) recovery wall time as history grows,
// full WAL replay (linear in total history) vs. checkpoint + tail replay
// (bounded by live data + the tail since the last checkpoint). The
// workload is update-heavy over a fixed row set — the operational case
// where history dwarfs live data and a checkpoint collapses it. (b) the
// OLTP cost of taking checkpoints *live*, measured as concurrent-driver
// committed txn/s with the daemon off vs. on (target: <= 5% overhead).
//
// Env knobs: OLTAP_CKPT_HISTORY_SCALE multiplies the history sizes in
// (a) (default 1); OLTAP_CKPT_DRIVER_OPS sets ops per driver worker in
// (b) (default 2000); OLTAP_CKPT_INTERVAL_US overrides (b)'s idle-backstop
// cadence; OLTAP_CKPT_OVERHEAD_REPS sets the off/on pairs (b) medians over.

#include <benchmark/benchmark.h>

#include "bench_reporter.h"

OLTAP_BENCH_REPORTER("checkpoint");

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "sql/session.h"
#include "txn/checkpoint.h"
#include "txn/checkpoint_daemon.h"
#include "txn/wal.h"
#include "workload/chbench.h"
#include "workload/driver.h"

namespace oltap {
namespace {

constexpr int64_t kLiveRows = 20'000;

int64_t EnvInt(const char* name, int64_t def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoll(v) : def;
}

Schema BenchSchema() {
  return SchemaBuilder()
      .AddInt64("id", false)
      .AddString("payload")
      .SetKey({"id"})
      .Build();
}

Row MakeRow(int64_t id, int64_t version) {
  return Row{Value::Int64(id),
             Value::String("payload-" + std::to_string(version))};
}

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// (a) kLiveRows rows, then update txns cycling over them: live data stays
// fixed while the history grows. Full replay re-applies every update;
// checkpoint recovery restores the final rows and replays only the tail
// past the newest checkpoint (fixed cadence => bounded tail). range(0) =
// total committed txns (scaled), range(1) = 1 to recover from the
// checkpoint chain, 0 for full replay of the same log.
void BM_CheckpointRecovery(benchmark::State& state) {
  const int64_t txns = state.range(0) * EnvInt("OLTAP_CKPT_HISTORY_SCALE", 1);
  const bool checkpointed = state.range(1) != 0;
  const int64_t ckpt_every = 10'000;

  Wal wal;
  Database db(&wal);
  if (!db.catalog()->CreateTable("t", BenchSchema(), TableFormat::kColumn).ok())
    std::abort();
  Table* table = db.catalog()->GetTable("t");
  TransactionManager* tm = db.txn_manager();
  CheckpointDaemon* daemon = db.EnsureCheckpointer();  // manual rounds only
  daemon->set_truncate_wal(false);  // keep the log: full replay needs it

  for (int64_t i = 0; i < txns; ++i) {
    auto txn = tm->Begin();
    Status s = i < kLiveRows
                   ? txn->Insert(table, MakeRow(i, i))
                   : txn->Update(table, MakeRow(i % kLiveRows, i));
    if (!s.ok() || !tm->Commit(txn.get()).ok()) std::abort();
    if ((i + 1) % ckpt_every == 0 && !daemon->CheckpointNow().ok())
      std::abort();
  }
  CheckpointStore store = daemon->StoreCopy();

  double secs = 0;
  size_t tail_txns = 0;
  for (auto _ : state) {
    Database recovered;
    auto start = std::chrono::steady_clock::now();
    if (checkpointed) {
      auto rec = recovered.RecoverFromCheckpointStore(store, wal.buffer());
      if (!rec.ok()) std::abort();
      tail_txns = rec->tail_txns;
    } else {
      if (!recovered.catalog()
               ->CreateTable("t", BenchSchema(), TableFormat::kColumn)
               .ok()) {
        std::abort();
      }
      auto rec = recovered.RecoverFromWal(wal.buffer());
      if (!rec.ok()) std::abort();
      tail_txns = rec->txns_applied;
    }
    secs = Seconds(start);
    int64_t n = 0;
    recovered.catalog()->GetTable("t")->ScanVisible(
        1'000'000'000, [&](const Row&) { ++n; });
    if (n != std::min(txns, kLiveRows)) std::abort();
  }

  std::string suffix = (checkpointed ? ".checkpointed." : ".full_replay.") +
                       std::to_string(txns);
  bench::Reporter::Get()->Metric("recovery_s" + suffix, secs);
  bench::Reporter::Get()->Metric("replayed_txns" + suffix,
                                 static_cast<double>(tail_txns));
  state.counters["recovery_s"] = secs;
  state.counters["replayed"] = static_cast<double>(tail_txns);
}
BENCHMARK(BM_CheckpointRecovery)
    ->Args({20'000, 0})
    ->Args({20'000, 1})
    ->Args({80'000, 0})
    ->Args({80'000, 1})
    ->Args({320'000, 0})
    ->Args({320'000, 1})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// (b) Live checkpoint overhead under the concurrent TPC-C/CH driver:
// identical runs with the daemon off and on, compared on committed OLTP
// txn/s. A checkpoint round serializes the whole database (a few hundred
// ms at this scale — the ckpt.duration_us histogram in the registry dump
// has the exact figure), so the operationally sane cadence is O(seconds):
// the default 4s matches the cadence (a)'s 10k-txn tail bound implies at
// this throughput. OLTAP_CKPT_INTERVAL_US overrides it — cranking it down
// prices over-checkpointing instead. Off/on runs alternate for
// OLTAP_CKPT_OVERHEAD_REPS pairs (default 3) and the reported overhead
// compares medians, since a single A/B pair on a shared host is noise.
double RunDriver(bool with_checkpoints, uint64_t* checkpoints_out) {
  Wal wal;
  Database db(&wal);
  CHConfig config;
  config.warehouses = 4;
  CHBenchmark bench(&db, config);
  if (!bench.CreateTables().ok() || !bench.Load().ok()) std::abort();

  DriverOptions opts;
  opts.oltp_workers = 4;
  opts.olap_workers = 1;
  opts.ops_per_worker =
      static_cast<size_t>(EnvInt("OLTAP_CKPT_DRIVER_OPS", 2000));
  opts.seed = 7;
  opts.group_commit = true;
  opts.merge_delta_threshold = 4096;
  opts.merge_interval_ms = 2;
  opts.run_checkpoint_daemon = with_checkpoints;
  opts.checkpoint_interval_us = EnvInt("OLTAP_CKPT_INTERVAL_US", 4'000'000);
  // Byte trigger as the primary policy: checkpoint per ~8MB of log (~4k txns), the
  // bounded-tail cadence from (a) expressed in bytes. The interval above
  // is the idle backstop.
  opts.checkpoint_wal_trigger_bytes = 8 << 20;
  opts.checkpoint_truncate_wal = true;
  opts.wal_segment_bytes = 1 << 20;  // rotation => truncation can drop bytes

  ConcurrentDriver driver(&bench, opts);
  DriverReport report = driver.Run();
  if (report.aborted) std::abort();
  if (checkpoints_out != nullptr) *checkpoints_out = report.checkpoints;
  if (with_checkpoints && report.checkpoints == 0) std::abort();
  return report.oltp_txn_per_s;
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

void BM_CheckpointLiveOverhead(benchmark::State& state) {
  const int reps = static_cast<int>(EnvInt("OLTAP_CKPT_OVERHEAD_REPS", 3));
  for (auto _ : state) {
    std::vector<double> base, ckpt;
    uint64_t checkpoints = 0;
    for (int r = 0; r < reps; ++r) {
      base.push_back(RunDriver(false, nullptr));
      uint64_t n = 0;
      ckpt.push_back(RunDriver(true, &n));
      checkpoints += n;
    }
    double baseline = Median(base);
    double with_ckpt = Median(ckpt);
    double overhead_pct = 100.0 * (baseline - with_ckpt) / baseline;
    bench::Reporter::Get()->Metric("oltp_txn_s.baseline", baseline);
    bench::Reporter::Get()->Metric("oltp_txn_s.with_checkpoints", with_ckpt);
    bench::Reporter::Get()->Metric("live_overhead_pct", overhead_pct);
    bench::Reporter::Get()->Metric("checkpoints_taken",
                                   static_cast<double>(checkpoints));
    state.counters["base_txn_s"] = baseline;
    state.counters["ckpt_txn_s"] = with_ckpt;
    state.counters["overhead_pct"] = overhead_pct;
  }
}
BENCHMARK(BM_CheckpointLiveOverhead)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace oltap
