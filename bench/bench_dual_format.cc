// E4 — Dual-format storage (Oracle Database In-Memory [22], fractured
// mirrors [33]).
//
// The same mixed workload (point lookups + point updates + analytic scans)
// against the three formats. Expected shape:
//   kRow:    fastest OLTP, slowest analytics (tuple-at-a-time scans).
//   kColumn: fastest analytics, slower OLTP (key index + delta lookups).
//   kDual:   OLTP ≈ row (served by the row mirror), analytics ≈ column
//            (served by the columnar mirror), at ~2x write amplification.

#include <benchmark/benchmark.h>

#include "bench_reporter.h"

OLTAP_BENCH_REPORTER("dual_format");

#include <atomic>
#include <map>
#include <memory>
#include <thread>

#include "common/rng.h"
#include "exec/operators.h"
#include "storage/table.h"

namespace oltap {
namespace {

constexpr size_t kRowsLoaded = 200000;

Schema BenchSchema() {
  return SchemaBuilder()
      .AddInt64("id", false)
      .AddInt64("k", false)
      .AddDouble("v", false)
      .SetKey({"id"})
      .Build();
}

Row MakeRow(int64_t id, Rng* rng) {
  return Row{Value::Int64(id), Value::Int64(rng->UniformRange(0, 999)),
             Value::Double(rng->NextDouble() * 100)};
}

Table* SharedTable(TableFormat format) {
  static std::map<TableFormat, std::unique_ptr<Table>>* cache =
      new std::map<TableFormat, std::unique_ptr<Table>>();
  auto it = cache->find(format);
  if (it == cache->end()) {
    auto table = std::make_unique<Table>("t", BenchSchema(), format);
    Rng rng(1);
    if (format == TableFormat::kRow) {
      for (size_t i = 0; i < kRowsLoaded; ++i) {
        Status st = table->InsertCommitted(
            MakeRow(static_cast<int64_t>(i), &rng), 1);
        if (!st.ok()) std::abort();
      }
    } else {
      std::vector<Row> rows;
      rows.reserve(kRowsLoaded);
      for (size_t i = 0; i < kRowsLoaded; ++i) {
        rows.push_back(MakeRow(static_cast<int64_t>(i), &rng));
      }
      if (!table->BulkLoadToMain(rows, 1).ok()) std::abort();
    }
    it = cache->emplace(format, std::move(table)).first;
  }
  return it->second.get();
}

std::string KeyOf(int64_t id) {
  static const Schema schema = BenchSchema();
  return EncodeKey(schema, Row{Value::Int64(id), Value::Int64(0),
                               Value::Double(0)});
}

void BM_PointLookup(benchmark::State& state) {
  Table* table = SharedTable(static_cast<TableFormat>(state.range(0)));
  Rng rng(5);
  Row out;
  for (auto _ : state) {
    bool found = table->Lookup(
        KeyOf(static_cast<int64_t>(rng.Uniform(kRowsLoaded))), 100, &out);
    benchmark::DoNotOptimize(found);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(TableFormatToString(static_cast<TableFormat>(state.range(0))));
}

void BM_PointUpdate(benchmark::State& state) {
  Table* table = SharedTable(static_cast<TableFormat>(state.range(0)));
  Rng rng(6);
  Timestamp ts = 1000;
  for (auto _ : state) {
    int64_t id = static_cast<int64_t>(rng.Uniform(kRowsLoaded));
    Row row{Value::Int64(id), Value::Int64(rng.UniformRange(0, 999)),
            Value::Double(1.0)};
    Status st = table->UpdateCommitted(KeyOf(id), row, ++ts);
    benchmark::DoNotOptimize(st.ok());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(TableFormatToString(static_cast<TableFormat>(state.range(0))));
}

// The skip list's signature OLTP pattern: "the next 20 rows from this
// key" (TPC-C order status / delivery). kRow/kDual answer from the
// ordered index in O(log n + k); kColumn must scan and sort.
void BM_ShortRangeScan(benchmark::State& state) {
  Table* table = SharedTable(static_cast<TableFormat>(state.range(0)));
  Rng rng(11);
  for (auto _ : state) {
    int64_t start = static_cast<int64_t>(rng.Uniform(kRowsLoaded - 32));
    int64_t sum = 0;
    table->ScanRange(KeyOf(start), 20, 100,
                     [&](const Row& r) { sum += r[1].AsInt64(); });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 20);
  state.SetLabel(TableFormatToString(static_cast<TableFormat>(state.range(0))));
}

void BM_AnalyticScan(benchmark::State& state) {
  Table* table = SharedTable(static_cast<TableFormat>(state.range(0)));
  ExprPtr pred = Expr::Compare(CompareOp::kLt,
                               Expr::Column(1, ValueType::kInt64),
                               Expr::Constant(Value::Int64(100)));
  for (auto _ : state) {
    ScanOp scan(table, 100, pred);
    std::vector<Row> rows = CollectRows(&scan);
    benchmark::DoNotOptimize(rows.size());
  }
  state.SetItemsProcessed(state.iterations() * kRowsLoaded);
  state.SetLabel(TableFormatToString(static_cast<TableFormat>(state.range(0))));
}

// The decisive OLTP difference between the formats is concurrency: the
// skip-list row store is latch-free (writers CAS, readers never wait),
// while the columnar engine serializes writers on its table-wide key-index
// latch. Aggregate update throughput across N threads:
//   kRow scales with threads; kColumn plateaus; kDual follows its row
//   mirror for reads but pays both mirrors on writes.
void BM_ConcurrentPointUpdates(benchmark::State& state) {
  TableFormat format = static_cast<TableFormat>(state.range(0));
  int threads = static_cast<int>(state.range(1));
  constexpr int kOpsPerThread = 20000;
  for (auto _ : state) {
    state.PauseTiming();
    auto table = std::make_unique<Table>("t", BenchSchema(), format);
    {
      Rng rng(1);
      if (format == TableFormat::kRow) {
        for (size_t i = 0; i < kRowsLoaded; ++i) {
          table->InsertCommitted(MakeRow(static_cast<int64_t>(i), &rng), 1)
              .ok();
        }
      } else {
        std::vector<Row> rows;
        rows.reserve(kRowsLoaded);
        for (size_t i = 0; i < kRowsLoaded; ++i) {
          rows.push_back(MakeRow(static_cast<int64_t>(i), &rng));
        }
        table->BulkLoadToMain(rows, 1).ok();
      }
    }
    std::atomic<Timestamp> ts{100};
    state.ResumeTiming();
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        Rng rng(50 + t);
        for (int i = 0; i < kOpsPerThread; ++i) {
          // Disjoint key ranges: no logical conflicts, only structural
          // contention.
          int64_t id = t * (kRowsLoaded / threads) +
                       rng.Uniform(kRowsLoaded / threads);
          Row row{Value::Int64(id), Value::Int64(1), Value::Double(2.0)};
          table
              ->UpdateCommitted(KeyOf(id), row,
                                ts.fetch_add(1, std::memory_order_acq_rel))
              .ok();
        }
      });
    }
    for (auto& w : workers) w.join();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(threads) * kOpsPerThread);
  state.counters["threads"] = threads;
  state.SetLabel(TableFormatToString(format));
}

// Registration order matters: scans run before updates so the measured
// tables are still in their bulk-loaded (merged) state.
BENCHMARK(BM_PointLookup)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_ShortRangeScan)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_AnalyticScan)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PointUpdate)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_ConcurrentPointUpdates)
    ->Args({0, 1})
    ->Args({0, 4})
    ->Args({0, 8})
    ->Args({1, 1})
    ->Args({1, 4})
    ->Args({1, 8})
    ->Args({2, 1})
    ->Args({2, 4})
    ->Args({2, 8})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace oltap
