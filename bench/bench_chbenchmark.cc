// E12 — CH-benCHmark [6]: TPC-C transactions and TPC-H-style analytics on
// the same live database.
//
// Reports: (a) pure transactional throughput; (b) analytic query latency
// on cold (unmerged delta) vs. freshly merged data; (c) the headline mixed
// run — transaction throughput with concurrent analytic streams, showing
// OLTP degrading gracefully rather than stopping (the OLTAP promise), and
// (d) the freshness sweep: merge period vs. analytic latency.

#include <benchmark/benchmark.h>

#include "bench_reporter.h"

OLTAP_BENCH_REPORTER("chbenchmark");

#include <atomic>
#include <memory>
#include <thread>

#include "workload/chbench.h"

namespace oltap {
namespace {

CHConfig BenchConfig() {
  CHConfig config;
  config.warehouses = 4;
  config.districts_per_warehouse = 10;
  config.customers_per_district = 100;
  config.items = 1000;
  config.initial_orders_per_district = 30;
  bench::Reporter::Get()->Config("warehouses", config.warehouses);
  bench::Reporter::Get()->Config("districts_per_warehouse",
                                 config.districts_per_warehouse);
  bench::Reporter::Get()->Config("customers_per_district",
                                 config.customers_per_district);
  bench::Reporter::Get()->Config("items", config.items);
  return config;
}

struct World {
  Database db;
  std::unique_ptr<CHBenchmark> bench;

  World() {
    bench = std::make_unique<CHBenchmark>(&db, BenchConfig());
    if (!bench->CreateTables().ok()) std::abort();
    if (!bench->Load().ok()) std::abort();
  }
};

// (a) Transaction throughput, single stream.
void BM_TpccTransactionMix(benchmark::State& state) {
  World world;
  Rng rng(1);
  CHTxnStats stats;
  for (auto _ : state) {
    Status st = world.bench->RunMixed(&rng, &stats, 10);
    benchmark::DoNotOptimize(st.ok());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["aborts"] = static_cast<double>(stats.aborts);
}

// (b) Analytic latency per query, after a warm-up of transactions, on
// unmerged vs. merged data.
void BM_AnalyticQuery(benchmark::State& state) {
  static World* world = [] {
    auto* w = new World();
    Rng rng(2);
    CHTxnStats stats;
    for (int i = 0; i < 2000; ++i) w->bench->RunMixed(&rng, &stats, 10);
    return w;
  }();
  size_t query = static_cast<size_t>(state.range(0));
  bool merged = state.range(1) != 0;
  if (merged) world->db.MergeAll();
  for (auto _ : state) {
    auto r = world->bench->RunQuery(query);
    if (!r.ok()) std::abort();
    benchmark::DoNotOptimize(r->rows.size());
  }
  state.SetLabel(CHBenchmark::Queries()[query].name +
                 (merged ? "/merged" : "/unmerged"));
}

// (c) The mixed run: transaction throughput with 0/1/2 analytic streams.
void BM_MixedWorkload(benchmark::State& state) {
  int analysts = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    World world;
    {
      Rng warm(3);
      CHTxnStats stats;
      for (int i = 0; i < 500; ++i) world.bench->RunMixed(&warm, &stats, 10);
    }
    std::atomic<bool> stop{false};
    std::atomic<int64_t> queries_done{0};
    std::vector<std::thread> analysts_threads;
    for (int a = 0; a < analysts; ++a) {
      analysts_threads.emplace_back([&, a] {
        size_t q = static_cast<size_t>(a);
        while (!stop.load(std::memory_order_acquire)) {
          auto r = world.bench->RunQuery(q % CHBenchmark::Queries().size());
          if (r.ok()) queries_done.fetch_add(1);
          q += 1;
        }
      });
    }
    state.ResumeTiming();

    constexpr int kTxnGoal = 2000;
    std::atomic<int> done{0};
    std::vector<std::thread> workers;
    std::vector<CHTxnStats> stats(2);
    for (int t = 0; t < 2; ++t) {
      workers.emplace_back([&, t] {
        Rng rng(100 + t);
        while (done.fetch_add(1) < kTxnGoal) {
          world.bench->RunMixed(&rng, &stats[t], 20).ok();
        }
      });
    }
    for (auto& w : workers) w.join();

    state.PauseTiming();
    stop.store(true);
    for (auto& a : analysts_threads) a.join();
    state.counters["analytic_queries"] =
        static_cast<double>(queries_done.load());
    state.counters["txn_aborts"] =
        static_cast<double>(stats[0].aborts + stats[1].aborts);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * 2000);
  state.counters["analysts"] = analysts;
}

// (d) Freshness sweep: run transactions, merging every K; report analytic
// latency right after the workload (staleness = up to K txns of delta).
void BM_FreshnessSweep(benchmark::State& state) {
  int merge_every = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    World world;
    Rng rng(4);
    CHTxnStats stats;
    for (int i = 0; i < 2000; ++i) {
      world.bench->RunMixed(&rng, &stats, 10).ok();
      if (merge_every > 0 && (i + 1) % merge_every == 0) {
        world.db.MergeAll();
      }
    }
    state.ResumeTiming();
    // Timed portion: one pass over the analytic query set.
    for (size_t q = 0; q < CHBenchmark::Queries().size(); ++q) {
      auto r = world.bench->RunQuery(q);
      if (!r.ok()) std::abort();
      benchmark::DoNotOptimize(r->rows.size());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          CHBenchmark::Queries().size());
  state.counters["merge_every"] =
      merge_every > 0 ? static_cast<double>(merge_every) : 1e9;
}

BENCHMARK(BM_TpccTransactionMix)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_AnalyticQuery)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({3, 0})
    ->Args({3, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MixedWorkload)->Arg(0)->Arg(1)->Arg(2)
    ->UseRealTime()->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_FreshnessSweep)->Arg(0)->Arg(200)->Arg(2000)
    ->UseRealTime()->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace oltap
