#include "bench_reporter.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

#include "obs/exporter.h"
#include "obs/metrics.h"

namespace oltap {
namespace bench {
namespace {

// All state lives behind a function-local static: OLTAP_BENCH_REPORTER
// calls SetName from another TU's static initializer, before this TU's
// globals would have been dynamically initialized.
struct State {
  std::mutex mu;
  std::string name;                           // empty = no report
  std::map<std::string, std::string> config;  // values are raw JSON
  std::map<std::string, double> metrics;
  bool atexit_registered = false;
};

State& GetState() {
  static State* state = new State();
  return *state;
}

std::string JsonEscape(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string JsonNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void WriteLocked(const State& state) {
  if (state.name.empty()) return;
  std::string out = "{\"name\":" + JsonEscape(state.name);
  // Host parallelism, so speedup-vs-cores results are interpretable when
  // reports from different machines land in the same archive.
  out += ",\"hardware_concurrency\":" +
         std::to_string(std::thread::hardware_concurrency());
  out += ",\"config\":{";
  bool first = true;
  for (const auto& [k, v] : state.config) {
    if (!first) out += ",";
    first = false;
    out += JsonEscape(k) + ":" + v;
  }
  out += "},\"metrics\":{";
  first = true;
  for (const auto& [k, v] : state.metrics) {
    if (!first) out += ",";
    first = false;
    out += JsonEscape(k) + ":" + JsonNumber(v);
  }
  out += "},\"registry\":";
  out += obs::RenderJson(*obs::MetricsRegistry::Default());
  out += "}\n";

  std::string path = "BENCH_" + state.name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
}

void FlushAtExit() {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  WriteLocked(state);
}

}  // namespace

Reporter* Reporter::Get() {
  static Reporter* instance = new Reporter();
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  if (!state.atexit_registered) {
    state.atexit_registered = true;
    std::atexit(FlushAtExit);
  }
  return instance;
}

void Reporter::SetName(const std::string& name) {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  state.name = name;
}

void Reporter::Config(const std::string& key, const std::string& value) {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  state.config[key] = JsonEscape(value);
}

void Reporter::Config(const std::string& key, double value) {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  state.config[key] = JsonNumber(value);
}

void Reporter::Metric(const std::string& key, double value) {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  state.metrics[key] = value;
}

void Reporter::Write() {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  WriteLocked(state);
}

}  // namespace bench
}  // namespace oltap
