// E10 — Scale-out: hash partitioning + synchronous replication + scatter-
// gather analytics (Kudu [24], Oracle DBIM distributed [27], MemSQL).
//
// Ingest and scan throughput as the cluster grows from 1 to 8 nodes with
// replication factor 3 and a 100µs simulated one-way network latency.
// Expected shape: multi-client ingest throughput scales near-linearly with
// nodes (writes spread across tablet leaders) until replication traffic
// dominates; scatter-gather aggregate latency stays roughly flat (each
// node scans 1/N of the data in parallel, plus one fan-out round trip).
// Raft consensus itself is exercised separately (tests + BM_RaftCommit).

#include <benchmark/benchmark.h>

#include "bench_reporter.h"

OLTAP_BENCH_REPORTER("scaleout");

#include <atomic>
#include <memory>
#include <thread>

#include "common/rng.h"
#include "dist/cluster.h"
#include "dist/partition.h"
#include "obs/metrics.h"

namespace oltap {
namespace {

Schema BenchSchema() {
  return SchemaBuilder()
      .AddInt64("id", false)
      .AddInt64("k", false)
      .AddInt64("v", false)
      .SetKey({"id"})
      .Build();
}

DistributedEngine::Options EngineOptions(int nodes) {
  DistributedEngine::Options opts;
  opts.num_nodes = nodes;
  opts.num_partitions = nodes * 4;
  opts.replication_factor = 3;
  opts.net.base_latency_us = 100;
  opts.net.per_kb_us = 2;
  return opts;
}

// Multi-client ingest throughput (rows/sec) vs. cluster size. The offered
// load scales with the cluster (4 client sessions per node, as a scale-out
// evaluation would drive it): each write is latency-bound on its
// replication round trips, so aggregate throughput grows with the number
// of tablet leaders absorbing clients in parallel.
void BM_DistributedIngest(benchmark::State& state) {
  int nodes = static_cast<int>(state.range(0));
  const int clients = 4 * nodes;
  constexpr int kRowsPerClient = 150;
  std::atomic<int64_t> next_id{0};
  for (auto _ : state) {
    state.PauseTiming();
    DistributedEngine engine(BenchSchema(), EngineOptions(nodes));
    state.ResumeTiming();
    std::vector<std::thread> client_threads;
    for (int c = 0; c < clients; ++c) {
      client_threads.emplace_back([&, c] {
        Rng rng(c);
        for (int i = 0; i < kRowsPerClient; ++i) {
          int64_t id = next_id.fetch_add(1);
          engine
              .InsertFrom(c % nodes,
                          Row{Value::Int64(id),
                              Value::Int64(rng.UniformRange(0, 999)),
                              Value::Int64(1)})
              .ok();
        }
      });
    }
    for (auto& c : client_threads) c.join();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(clients) * kRowsPerClient);
  state.counters["nodes"] = nodes;
  state.counters["clients"] = clients;
}

// Scatter-gather aggregate latency vs. cluster size at fixed total data.
void BM_DistributedAggregate(benchmark::State& state) {
  int nodes = static_cast<int>(state.range(0));
  constexpr size_t kTotalRows = 400000;
  static std::map<int, std::unique_ptr<DistributedEngine>>* cache =
      new std::map<int, std::unique_ptr<DistributedEngine>>();
  auto it = cache->find(nodes);
  if (it == cache->end()) {
    DistributedEngine::Options opts = EngineOptions(nodes);
    opts.net.base_latency_us = 100;
    auto engine =
        std::make_unique<DistributedEngine>(BenchSchema(), opts);
    Rng rng(5);
    // Parallel load (not timed).
    std::vector<std::thread> loaders;
    std::atomic<int64_t> next{0};
    for (int t = 0; t < 8; ++t) {
      loaders.emplace_back([&] {
        Rng local(next.fetch_add(1) + 100);
        int64_t id;
        while ((id = next.fetch_add(1)) < static_cast<int64_t>(kTotalRows)) {
          engine
              ->InsertFrom(0, Row{Value::Int64(id),
                                  Value::Int64(local.UniformRange(0, 999)),
                                  Value::Int64(1)})
              .ok();
        }
      });
    }
    for (auto& l : loaders) l.join();
    it = cache->emplace(nodes, std::move(engine)).first;
  }
  DistributedEngine* engine = it->second.get();
  // The engine (and its network) is cached across phases. Reset() only
  // zeroes the *per-instance* counters; the registry's global net.* keep
  // accumulating across every engine in the process, so the per-phase
  // global numbers come from snapshot-and-diff around the timed loop.
  auto* registry = obs::MetricsRegistry::Default();
  obs::Counter* net_messages = registry->GetCounter("net.messages");
  obs::Counter* net_bytes = registry->GetCounter("net.bytes");
  const uint64_t messages_before = net_messages->Value();
  const uint64_t bytes_before = net_bytes->Value();
  for (auto _ : state) {
    double sum = engine->SumWhere(1, CompareOp::kLt, 500, 2);
    benchmark::DoNotOptimize(sum);
  }
  state.counters["nodes"] = nodes;
  state.counters["net_messages"] =
      static_cast<double>(net_messages->Value() - messages_before);
  state.counters["net_bytes"] =
      static_cast<double>(net_bytes->Value() - bytes_before);
}

// Raft replication cost: committed entries per second through a step-driven
// 3/5-node cluster (consensus-layer baseline for the write path).
void BM_RaftCommit(benchmark::State& state) {
  int nodes = static_cast<int>(state.range(0));
  RaftCluster::Options opts;
  opts.num_nodes = nodes;
  RaftCluster cluster(opts);
  if (cluster.AwaitLeader(2000) < 0) std::abort();
  int64_t committed = 0;
  for (auto _ : state) {
    cluster.Propose("payload");
    cluster.Step(1);
    committed = static_cast<int64_t>(
        cluster.CommittedAt(cluster.LeaderId()).size());
  }
  cluster.Step(100);
  state.SetItemsProcessed(
      static_cast<int64_t>(cluster.CommittedAt(cluster.LeaderId()).size()));
  state.counters["nodes"] = nodes;
  benchmark::DoNotOptimize(committed);
}

BENCHMARK(BM_DistributedIngest)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DistributedAggregate)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RaftCommit)->Arg(3)->Arg(5);

}  // namespace
}  // namespace oltap
