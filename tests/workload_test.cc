#include <gtest/gtest.h>

#include "workload/retail.h"
#include "workload/telemetry.h"

namespace oltap {
namespace {

TEST(TelemetryTest, IngestAndQuery) {
  Database db;
  TelemetryWorkload::Config config;
  config.num_hosts = 10;
  config.num_metrics = 4;
  TelemetryWorkload wl(&db, config);
  ASSERT_TRUE(wl.CreateTable().ok());
  for (int batch = 0; batch < 5; ++batch) {
    ASSERT_TRUE(wl.IngestBatch(batch * 1000, 200).ok());
  }
  EXPECT_EQ(wl.rows_ingested(), 1000);

  auto all = db.Execute("SELECT COUNT(*) FROM metrics");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->rows[0][0].AsInt64(), 1000);

  // Window query only sees recent rows.
  auto recent = db.Execute(TelemetryWorkload::AvgByMetricSince(4000));
  ASSERT_TRUE(recent.ok()) << recent.status().ToString();
  int64_t samples = 0;
  for (const Row& r : recent->rows) samples += r[1].AsInt64();
  EXPECT_EQ(samples, 200);  // only the last batch
  for (const Row& r : recent->rows) {
    EXPECT_GE(r[2].AsDouble(), 0.0);
    EXPECT_LE(r[3].AsDouble(), 100.0);
  }

  auto hot = db.Execute(TelemetryWorkload::HottestHosts(0, 3));
  ASSERT_TRUE(hot.ok());
  EXPECT_LE(hot->rows.size(), 3u);

  auto histogram = db.Execute(TelemetryWorkload::MetricHistogram("cpu.util"));
  ASSERT_TRUE(histogram.ok());
  EXPECT_GT(histogram->rows.size(), 0u);
}

TEST(TelemetryTest, ZipfSkewMakesHotHosts) {
  Database db;
  TelemetryWorkload::Config config;
  config.num_hosts = 50;
  TelemetryWorkload wl(&db, config);
  ASSERT_TRUE(wl.CreateTable().ok());
  ASSERT_TRUE(wl.IngestBatch(0, 2000).ok());
  auto r = db.Execute(
      "SELECT host, COUNT(*) AS n FROM metrics GROUP BY host "
      "ORDER BY n DESC LIMIT 1");
  ASSERT_TRUE(r.ok());
  // The hottest of 50 hosts takes far more than 1/50 of the samples.
  EXPECT_GT(r->rows[0][1].AsInt64(), 2000 / 50 * 3);
}

TEST(RetailTest, SurgeDetection) {
  Database db;
  RetailWorkload::Config config;
  config.num_products = 100;
  RetailWorkload wl(&db, config);
  ASSERT_TRUE(wl.CreateTable().ok());

  // Background traffic, then a surge on product 42.
  ASSERT_TRUE(wl.IngestBatch(0, 1000).ok());
  ASSERT_TRUE(wl.IngestBatch(1000, 1000, /*surge_product=*/42).ok());

  auto trending = db.Execute(RetailWorkload::TrendingSince(1000, 5));
  ASSERT_TRUE(trending.ok()) << trending.status().ToString();
  ASSERT_GT(trending->rows.size(), 0u);
  EXPECT_EQ(trending->rows[0][0].AsString(), wl.product_name(42));
  // Surge sentiment skews positive.
  EXPECT_GT(trending->rows[0][2].AsDouble(), 0.0);

  auto by_region = db.Execute(RetailWorkload::ProductByRegion(42));
  ASSERT_TRUE(by_region.ok());
  EXPECT_LE(by_region->rows.size(), 8u);
  EXPECT_GT(by_region->rows.size(), 0u);

  auto surge = db.Execute(RetailWorkload::SurgeScore(1000, 3));
  ASSERT_TRUE(surge.ok());
  EXPECT_EQ(surge->rows[0][0].AsString(), wl.product_name(42));
}

TEST(RetailTest, MergeDoesNotChangeTrends) {
  Database db;
  RetailWorkload wl(&db, RetailWorkload::Config{});
  ASSERT_TRUE(wl.CreateTable().ok());
  ASSERT_TRUE(wl.IngestBatch(0, 500, 7).ok());
  auto before = db.Execute(RetailWorkload::TrendingSince(0, 5));
  ASSERT_TRUE(before.ok());
  db.MergeAll();
  auto after = db.Execute(RetailWorkload::TrendingSince(0, 5));
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(before->rows.size(), after->rows.size());
  for (size_t i = 0; i < before->rows.size(); ++i) {
    EXPECT_EQ(before->rows[i][0].AsString(), after->rows[i][0].AsString());
    EXPECT_EQ(before->rows[i][1].AsInt64(), after->rows[i][1].AsInt64());
  }
}

}  // namespace
}  // namespace oltap
