#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "exec/expr.h"

namespace oltap {
namespace {

Batch MakeBatch(const std::vector<Row>& rows,
                const std::vector<ValueType>& types) {
  Batch b;
  for (const Row& r : rows) b.AppendRow(r, types);
  return b;
}

TEST(ExprTest, ColumnAndConstant) {
  ExprPtr col = Expr::Column(1, ValueType::kInt64);
  ExprPtr c = Expr::Constant(Value::Int64(7));
  Row row = {Value::String("x"), Value::Int64(42)};
  EXPECT_EQ(col->EvalRow(row).AsInt64(), 42);
  EXPECT_EQ(c->EvalRow(row).AsInt64(), 7);
}

TEST(ExprTest, CompareAndLogic) {
  // ($0 > 5) AND NOT ($0 = 10)
  ExprPtr e = Expr::And(
      Expr::Compare(CompareOp::kGt, Expr::Column(0, ValueType::kInt64),
                    Expr::Constant(Value::Int64(5))),
      Expr::Not(Expr::Compare(CompareOp::kEq,
                              Expr::Column(0, ValueType::kInt64),
                              Expr::Constant(Value::Int64(10)))));
  EXPECT_TRUE(e->EvalRow({Value::Int64(7)}).AsBool());
  EXPECT_FALSE(e->EvalRow({Value::Int64(10)}).AsBool());
  EXPECT_FALSE(e->EvalRow({Value::Int64(3)}).AsBool());
}

TEST(ExprTest, NullComparisonYieldsNull) {
  ExprPtr e = Expr::Compare(CompareOp::kEq, Expr::Column(0, ValueType::kInt64),
                            Expr::Constant(Value::Int64(1)));
  EXPECT_TRUE(e->EvalRow({Value::Null()}).is_null());
}

TEST(ExprTest, ThreeValuedAndOr) {
  ExprPtr null_cmp =
      Expr::Compare(CompareOp::kEq, Expr::Column(0, ValueType::kInt64),
                    Expr::Constant(Value::Null()));
  // NULL AND FALSE = FALSE; NULL OR TRUE = TRUE; NULL AND TRUE = NULL.
  ExprPtr f = Expr::Constant(Value::Bool(false));
  ExprPtr t = Expr::Constant(Value::Bool(true));
  Row row = {Value::Int64(1)};
  EXPECT_FALSE(Expr::And(null_cmp, f)->EvalRow(row).is_null());
  EXPECT_FALSE(Expr::And(null_cmp, f)->EvalRow(row).AsBool());
  EXPECT_TRUE(Expr::Or(null_cmp, t)->EvalRow(row).AsBool());
  EXPECT_TRUE(Expr::And(null_cmp, t)->EvalRow(row).is_null());
}

TEST(ExprTest, ArithmeticPromotion) {
  ExprPtr int_add =
      Expr::Arith(Expr::Kind::kAdd, Expr::Constant(Value::Int64(2)),
                  Expr::Constant(Value::Int64(3)));
  EXPECT_EQ(int_add->result_type(), ValueType::kInt64);
  EXPECT_EQ(int_add->EvalRow({}).AsInt64(), 5);

  ExprPtr mixed =
      Expr::Arith(Expr::Kind::kMul, Expr::Constant(Value::Int64(2)),
                  Expr::Constant(Value::Double(1.5)));
  EXPECT_EQ(mixed->result_type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(mixed->EvalRow({}).AsDouble(), 3.0);

  // Division is always double and guards zero.
  ExprPtr div =
      Expr::Arith(Expr::Kind::kDiv, Expr::Constant(Value::Int64(7)),
                  Expr::Constant(Value::Int64(2)));
  EXPECT_DOUBLE_EQ(div->EvalRow({}).AsDouble(), 3.5);
  ExprPtr div0 =
      Expr::Arith(Expr::Kind::kDiv, Expr::Constant(Value::Int64(7)),
                  Expr::Constant(Value::Int64(0)));
  EXPECT_TRUE(div0->EvalRow({}).is_null());
}

TEST(ExprTest, IsNull) {
  ExprPtr e = Expr::IsNull(Expr::Column(0, ValueType::kInt64));
  EXPECT_TRUE(e->EvalRow({Value::Null()}).AsBool());
  EXPECT_FALSE(e->EvalRow({Value::Int64(0)}).AsBool());
}

TEST(ExprTest, BatchPredicateMatchesRowEval) {
  // Property: EvalPredicate over a batch == EvalRow per row (NULL→false),
  // across a random expression workload.
  Rng rng(17);
  std::vector<ValueType> types = {ValueType::kInt64, ValueType::kDouble,
                                  ValueType::kString};
  std::vector<Row> rows;
  const char* strings[] = {"aa", "bb", "cc", "dd"};
  for (int i = 0; i < 500; ++i) {
    Row r;
    r.push_back(rng.Bernoulli(0.1) ? Value::Null()
                                   : Value::Int64(rng.UniformRange(-20, 20)));
    r.push_back(rng.Bernoulli(0.1)
                    ? Value::Null(ValueType::kDouble)
                    : Value::Double(rng.NextDouble() * 10 - 5));
    r.push_back(Value::String(strings[rng.Uniform(4)]));
    rows.push_back(std::move(r));
  }
  Batch batch = MakeBatch(rows, types);

  std::vector<ExprPtr> predicates = {
      Expr::Compare(CompareOp::kGt, Expr::Column(0, ValueType::kInt64),
                    Expr::Constant(Value::Int64(0))),
      Expr::Compare(CompareOp::kLe, Expr::Column(1, ValueType::kDouble),
                    Expr::Constant(Value::Double(1.0))),
      Expr::Compare(CompareOp::kEq, Expr::Column(2, ValueType::kString),
                    Expr::Constant(Value::String("bb"))),
      Expr::And(Expr::Compare(CompareOp::kGe,
                              Expr::Column(0, ValueType::kInt64),
                              Expr::Constant(Value::Int64(-10))),
                Expr::Compare(CompareOp::kNe,
                              Expr::Column(2, ValueType::kString),
                              Expr::Constant(Value::String("cc")))),
      Expr::Or(Expr::IsNull(Expr::Column(0, ValueType::kInt64)),
               Expr::Compare(CompareOp::kLt,
                             Expr::Column(0, ValueType::kInt64),
                             Expr::Constant(Value::Int64(-15)))),
      Expr::Compare(
          CompareOp::kGt,
          Expr::Arith(Expr::Kind::kAdd, Expr::Column(0, ValueType::kInt64),
                      Expr::Column(1, ValueType::kDouble)),
          Expr::Constant(Value::Double(2.0))),
  };
  for (size_t p = 0; p < predicates.size(); ++p) {
    BitVector bits;
    predicates[p]->EvalPredicate(batch, &bits);
    ASSERT_EQ(bits.size(), rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      Value v = predicates[p]->EvalRow(rows[i]);
      bool expected = !v.is_null() && v.AsBool();
      EXPECT_EQ(bits.Get(i), expected) << "pred " << p << " row " << i;
    }
  }
}

TEST(ExprTest, BatchArithmeticMatchesRowEval) {
  Rng rng(23);
  std::vector<ValueType> types = {ValueType::kInt64, ValueType::kDouble};
  std::vector<Row> rows;
  for (int i = 0; i < 200; ++i) {
    rows.push_back(Row{Value::Int64(rng.UniformRange(-5, 5)),
                       Value::Double(rng.NextDouble())});
  }
  Batch batch = MakeBatch(rows, types);
  ExprPtr e = Expr::Arith(
      Expr::Kind::kMul, Expr::Column(0, ValueType::kInt64),
      Expr::Arith(Expr::Kind::kAdd, Expr::Column(1, ValueType::kDouble),
                  Expr::Constant(Value::Double(1.0))));
  ColumnVector cv = e->EvalBatch(batch);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_DOUBLE_EQ(cv.GetValue(i).AsDouble(),
                     e->EvalRow(rows[i]).AsDouble());
  }
}

TEST(ExprTest, AsColumnPredicateBothOrientations) {
  Expr::ColumnPredicate cp;
  ExprPtr left = Expr::Compare(CompareOp::kLt,
                               Expr::Column(2, ValueType::kInt64),
                               Expr::Constant(Value::Int64(9)));
  ASSERT_TRUE(left->AsColumnPredicate(&cp));
  EXPECT_EQ(cp.column, 2);
  EXPECT_EQ(cp.op, CompareOp::kLt);
  EXPECT_EQ(cp.constant.AsInt64(), 9);

  // Constant on the left flips the operator.
  ExprPtr right = Expr::Compare(CompareOp::kLt,
                                Expr::Constant(Value::Int64(9)),
                                Expr::Column(2, ValueType::kInt64));
  ASSERT_TRUE(right->AsColumnPredicate(&cp));
  EXPECT_EQ(cp.op, CompareOp::kGt);

  // Column-to-column is not pushable.
  ExprPtr cc = Expr::Compare(CompareOp::kEq,
                             Expr::Column(0, ValueType::kInt64),
                             Expr::Column(1, ValueType::kInt64));
  EXPECT_FALSE(cc->AsColumnPredicate(&cp));
}

TEST(ExprTest, SplitAndCombineConjuncts) {
  ExprPtr a = Expr::Compare(CompareOp::kGt, Expr::Column(0, ValueType::kInt64),
                            Expr::Constant(Value::Int64(1)));
  ExprPtr b = Expr::Compare(CompareOp::kLt, Expr::Column(1, ValueType::kInt64),
                            Expr::Constant(Value::Int64(2)));
  ExprPtr c = Expr::IsNull(Expr::Column(2, ValueType::kInt64));
  ExprPtr conj = Expr::And(Expr::And(a, b), c);
  std::vector<ExprPtr> terms;
  Expr::SplitConjuncts(conj, &terms);
  ASSERT_EQ(terms.size(), 3u);
  EXPECT_EQ(terms[0], a);
  EXPECT_EQ(terms[1], b);
  EXPECT_EQ(terms[2], c);

  ExprPtr rebuilt = Expr::CombineConjuncts(terms);
  EXPECT_EQ(rebuilt->ToString(), conj->ToString());
  EXPECT_EQ(Expr::CombineConjuncts({}), nullptr);
}

TEST(ExprTest, ToStringRendering) {
  ExprPtr e = Expr::And(
      Expr::Compare(CompareOp::kGe, Expr::Column(0, ValueType::kInt64),
                    Expr::Constant(Value::Int64(3))),
      Expr::Compare(CompareOp::kNe, Expr::Column(1, ValueType::kString),
                    Expr::Constant(Value::String("x"))));
  EXPECT_EQ(e->ToString(), "(($0 >= 3) AND ($1 <> x))");
}

TEST(BatchTest, AppendRowAndGetRow) {
  std::vector<ValueType> types = {ValueType::kInt64, ValueType::kString};
  Batch b;
  b.AppendRow({Value::Int64(1), Value::String("a")}, types);
  b.AppendRow({Value::Null(), Value::String("b")}, types);
  EXPECT_EQ(b.num_rows(), 2u);
  EXPECT_EQ(b.num_columns(), 2u);
  Row r = b.GetRow(1);
  EXPECT_TRUE(r[0].is_null());
  EXPECT_EQ(r[1].AsString(), "b");
}

TEST(ColumnVectorTest, NullTrackingAfterMixedAppends) {
  ColumnVector cv(ValueType::kInt64);
  cv.AppendInt64(1);
  cv.AppendNull();
  cv.AppendInt64(3);
  EXPECT_EQ(cv.size(), 3u);
  EXPECT_FALSE(cv.IsNull(0));
  EXPECT_TRUE(cv.IsNull(1));
  EXPECT_FALSE(cv.IsNull(2));
}

}  // namespace
}  // namespace oltap
