#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "storage/column_segment.h"
#include "storage/zone_map.h"

namespace oltap {
namespace {

// Reference predicate evaluation for cross-checking segment scans.
template <typename T>
bool RefCompare(CompareOp op, T v, T c) {
  switch (op) {
    case CompareOp::kEq:
      return v == c;
    case CompareOp::kNe:
      return v != c;
    case CompareOp::kLt:
      return v < c;
    case CompareOp::kLe:
      return v <= c;
    case CompareOp::kGt:
      return v > c;
    case CompareOp::kGe:
      return v >= c;
  }
  return false;
}

TEST(ColumnSegmentTest, Int64PackedRoundTrip) {
  std::vector<int64_t> values = {100, 105, 110, 100, 200, 150};
  ColumnSegment seg = ColumnSegment::BuildInt64(values);
  EXPECT_TRUE(seg.int64_packed());  // small range → frame-of-reference
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(seg.GetInt64(i), values[i]);
  }
}

TEST(ColumnSegmentTest, Int64WideRangeFallsBackToRaw) {
  std::vector<int64_t> values = {INT64_MIN, 0, INT64_MAX};
  ColumnSegment seg = ColumnSegment::BuildInt64(values);
  EXPECT_FALSE(seg.int64_packed());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(seg.GetInt64(i), values[i]);
  }
}

TEST(ColumnSegmentTest, NegativeValuesPacked) {
  std::vector<int64_t> values = {-50, -10, -50, 0, 25};
  ColumnSegment seg = ColumnSegment::BuildInt64(values);
  EXPECT_TRUE(seg.int64_packed());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(seg.GetInt64(i), values[i]);
  }
  BitVector out;
  seg.ScanCompare(CompareOp::kLt, Value::Int64(0), &out);
  EXPECT_EQ(out.CountSet(), 3u);
}

class SegmentScanOpTest : public ::testing::TestWithParam<CompareOp> {};

TEST_P(SegmentScanOpTest, Int64ScanMatchesReference) {
  CompareOp op = GetParam();
  Rng rng(static_cast<uint64_t>(op) + 1);
  std::vector<int64_t> values(777);
  for (auto& v : values) v = rng.UniformRange(-100, 100);
  ColumnSegment seg = ColumnSegment::BuildInt64(values);
  for (int64_t c : {-150L, -100L, -1L, 0L, 50L, 100L, 150L}) {
    BitVector out;
    seg.ScanCompare(op, Value::Int64(c), &out);
    ASSERT_EQ(out.size(), values.size());
    for (size_t i = 0; i < values.size(); ++i) {
      EXPECT_EQ(out.Get(i), RefCompare(op, values[i], c))
          << "c=" << c << " i=" << i << " v=" << values[i];
    }
  }
}

TEST_P(SegmentScanOpTest, StringScanMatchesReference) {
  CompareOp op = GetParam();
  Rng rng(static_cast<uint64_t>(op) + 100);
  std::vector<std::string> values(400);
  for (auto& v : values) v = rng.AlphaString(1, 4);
  ColumnSegment seg = ColumnSegment::BuildString(values);
  // Constants both present and absent from the dictionary.
  std::vector<std::string> constants = {values[0], values[10], "", "zzzz",
                                        "m"};
  for (const std::string& c : constants) {
    BitVector out;
    seg.ScanCompare(op, Value::String(c), &out);
    for (size_t i = 0; i < values.size(); ++i) {
      bool expect;
      int cmp = values[i].compare(c);
      expect = RefCompare(op, cmp, 0);
      EXPECT_EQ(out.Get(i), expect) << "c=" << c << " v=" << values[i];
    }
  }
}

TEST_P(SegmentScanOpTest, DoubleScanMatchesReference) {
  CompareOp op = GetParam();
  Rng rng(static_cast<uint64_t>(op) + 200);
  std::vector<double> values(300);
  for (auto& v : values) v = rng.NextDouble() * 10 - 5;
  ColumnSegment seg = ColumnSegment::BuildDouble(values);
  for (double c : {-6.0, 0.0, 2.5, 6.0}) {
    BitVector out;
    seg.ScanCompare(op, Value::Double(c), &out);
    for (size_t i = 0; i < values.size(); ++i) {
      EXPECT_EQ(out.Get(i), RefCompare(op, values[i], c));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, SegmentScanOpTest,
                         ::testing::Values(CompareOp::kEq, CompareOp::kNe,
                                           CompareOp::kLt, CompareOp::kLe,
                                           CompareOp::kGt, CompareOp::kGe));

TEST(ColumnSegmentTest, NullsNeverMatchAndDecodeAsNull) {
  std::vector<Value> values = {Value::Int64(1), Value::Null(),
                               Value::Int64(3), Value::Null(),
                               Value::Int64(1)};
  ColumnSegment seg = ColumnSegment::Build(ValueType::kInt64, values);
  EXPECT_TRUE(seg.has_nulls());
  EXPECT_TRUE(seg.IsNull(1));
  EXPECT_FALSE(seg.IsNull(0));
  EXPECT_TRUE(seg.GetValue(1).is_null());
  EXPECT_EQ(seg.GetValue(2).AsInt64(), 3);

  BitVector out;
  seg.ScanCompare(CompareOp::kGe, Value::Int64(0), &out);
  EXPECT_EQ(out.CountSet(), 3u);  // nulls excluded
  seg.ScanCompare(CompareOp::kNe, Value::Int64(1), &out);
  EXPECT_EQ(out.CountSet(), 1u);  // only the 3
}

TEST(ColumnSegmentTest, CompareWithNullConstantMatchesNothing) {
  ColumnSegment seg = ColumnSegment::BuildInt64({1, 2, 3});
  BitVector out;
  seg.ScanCompare(CompareOp::kEq, Value::Null(), &out);
  EXPECT_EQ(out.CountSet(), 0u);
}

TEST(ColumnSegmentTest, StringSegmentDecodes) {
  std::vector<std::string> values = {"cherry", "apple", "banana", "apple"};
  ColumnSegment seg = ColumnSegment::BuildString(values);
  ASSERT_NE(seg.dictionary(), nullptr);
  EXPECT_EQ(seg.dictionary()->size(), 3u);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(seg.GetString(i), values[i]);
  }
}

TEST(ColumnSegmentTest, Int64DoubleConstantComparison) {
  ColumnSegment seg = ColumnSegment::BuildInt64({1, 2, 3, 4});
  BitVector out;
  seg.ScanCompare(CompareOp::kGt, Value::Double(2.5), &out);
  EXPECT_EQ(out.CountSet(), 2u);  // 3 and 4
}

TEST(ColumnSegmentTest, GatherDoubles) {
  ColumnSegment seg = ColumnSegment::BuildInt64({10, 20, 30, 40});
  BitVector sel(4);
  sel.Set(1);
  sel.Set(3);
  std::vector<double> out;
  std::vector<uint32_t> rids;
  seg.GatherDoubles(&sel, &out, &rids);
  EXPECT_EQ(out, (std::vector<double>{20, 40}));
  EXPECT_EQ(rids, (std::vector<uint32_t>{1, 3}));
  seg.GatherDoubles(nullptr, &out, nullptr);
  EXPECT_EQ(out.size(), 4u);
}

// Property: the zone-pruned scan is bit-identical to the full scan, for
// every operator, over random, clustered, and null-bearing data.
class ZonedScanEquivalenceTest : public ::testing::TestWithParam<CompareOp> {};

TEST_P(ZonedScanEquivalenceTest, Int64RandomAndSorted) {
  CompareOp op = GetParam();
  Rng rng(static_cast<uint64_t>(op) + 300);
  for (bool sorted : {false, true}) {
    std::vector<int64_t> values(5000);
    for (auto& v : values) v = rng.UniformRange(-500, 500);
    if (sorted) std::sort(values.begin(), values.end());
    ColumnSegment seg = ColumnSegment::BuildInt64(values);
    for (int64_t c : {-600L, -500L, -100L, 0L, 250L, 500L, 600L}) {
      BitVector plain, zoned;
      size_t pruned = 0;
      seg.ScanCompare(op, Value::Int64(c), &plain);
      seg.ScanCompareZoned(op, Value::Int64(c), &zoned, &pruned);
      EXPECT_EQ(plain, zoned) << "sorted=" << sorted << " c=" << c;
      EXPECT_LE(pruned, seg.zone_map().num_zones());
    }
  }
}

TEST_P(ZonedScanEquivalenceTest, StringsAndNulls) {
  CompareOp op = GetParam();
  Rng rng(static_cast<uint64_t>(op) + 400);
  std::vector<Value> values;
  for (int i = 0; i < 4000; ++i) {
    if (rng.Bernoulli(0.05)) {
      values.push_back(Value::Null(ValueType::kString));
    } else {
      values.push_back(Value::String(rng.AlphaString(1, 3)));
    }
  }
  ColumnSegment seg = ColumnSegment::Build(ValueType::kString, values);
  for (const char* c : {"", "a", "m", "mm", "zzzz"}) {
    BitVector plain, zoned;
    seg.ScanCompare(op, Value::String(c), &plain);
    seg.ScanCompareZoned(op, Value::String(c), &zoned);
    EXPECT_EQ(plain, zoned) << "c=" << c;
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, ZonedScanEquivalenceTest,
                         ::testing::Values(CompareOp::kEq, CompareOp::kNe,
                                           CompareOp::kLt, CompareOp::kLe,
                                           CompareOp::kGt, CompareOp::kGe));

TEST(ZonedScanTest, ClusteredDataPrunesMostZones) {
  // Sorted values with short runs (so frame-of-reference is chosen, not
  // RLE): a selective equality should visit ~1 zone.
  std::vector<int64_t> values(64 * 1024);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<int64_t>(i / 4);
  }
  ColumnSegment seg = ColumnSegment::BuildInt64(values);
  ASSERT_EQ(seg.encoding(), ColumnSegment::Encoding::kPacked);
  BitVector out;
  size_t pruned = 0;
  seg.ScanCompareZoned(CompareOp::kEq, Value::Int64(1000), &out, &pruned);
  EXPECT_EQ(out.CountSet(), 4u);
  EXPECT_GE(pruned, seg.zone_map().num_zones() - 2);
}

TEST(RleSegmentTest, ChosenForLongRunsAndRoundTrips) {
  std::vector<int64_t> values;
  Rng rng(31);
  int64_t v = 0;
  while (values.size() < 10000) {
    v += rng.UniformRange(1, 5);
    size_t run = 5 + rng.Uniform(40);
    for (size_t i = 0; i < run && values.size() < 10000; ++i) {
      values.push_back(v);
    }
  }
  ColumnSegment seg = ColumnSegment::BuildInt64(values);
  ASSERT_EQ(seg.encoding(), ColumnSegment::Encoding::kRle);
  EXPECT_LT(seg.num_runs(), values.size() / 5);
  for (size_t i = 0; i < values.size(); i += 7) {
    EXPECT_EQ(seg.GetInt64(i), values[i]) << i;
  }
  EXPECT_EQ(seg.GetInt64(0), values[0]);
  EXPECT_EQ(seg.GetInt64(values.size() - 1), values.back());
  // RLE is far smaller than the 8-byte-per-value raw form.
  EXPECT_LT(seg.MemoryBytes(), values.size() * sizeof(int64_t) / 4);
}

class RleScanOpTest : public ::testing::TestWithParam<CompareOp> {};

TEST_P(RleScanOpTest, MatchesUnencodedScan) {
  CompareOp op = GetParam();
  std::vector<int64_t> values;
  Rng rng(static_cast<uint64_t>(op) + 500);
  while (values.size() < 5000) {
    int64_t v = rng.UniformRange(-20, 20);
    size_t run = 10 + rng.Uniform(30);
    for (size_t i = 0; i < run && values.size() < 5000; ++i) {
      values.push_back(v);
    }
  }
  ColumnSegment rle = ColumnSegment::BuildInt64(values);
  ColumnSegment plain = ColumnSegment::BuildInt64NoRle(values);
  ASSERT_EQ(rle.encoding(), ColumnSegment::Encoding::kRle);
  ASSERT_NE(plain.encoding(), ColumnSegment::Encoding::kRle);
  for (int64_t c : {-25L, -20L, 0L, 13L, 20L, 25L}) {
    BitVector a, b;
    rle.ScanCompare(op, Value::Int64(c), &a);
    plain.ScanCompare(op, Value::Int64(c), &b);
    EXPECT_EQ(a, b) << "c=" << c;
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, RleScanOpTest,
                         ::testing::Values(CompareOp::kEq, CompareOp::kNe,
                                           CompareOp::kLt, CompareOp::kLe,
                                           CompareOp::kGt, CompareOp::kGe));

TEST(BitVectorSetRangeTest, WordBoundaries) {
  for (auto [lo, hi] : std::vector<std::pair<size_t, size_t>>{
           {0, 0}, {0, 1}, {0, 64}, {1, 63}, {63, 65}, {10, 200},
           {64, 128}, {199, 200}}) {
    BitVector bv(200);
    bv.SetRange(lo, hi);
    for (size_t i = 0; i < 200; ++i) {
      EXPECT_EQ(bv.Get(i), i >= lo && i < hi)
          << "range [" << lo << "," << hi << ") bit " << i;
    }
    EXPECT_EQ(bv.CountSet(), hi - lo);
  }
}

TEST(ZonedScanTest, FallsBackForDoubles) {
  std::vector<double> values = {1.0, 2.0, 3.0};
  ColumnSegment seg = ColumnSegment::BuildDouble(values);
  BitVector plain, zoned;
  size_t pruned = 123;
  seg.ScanCompare(CompareOp::kGt, Value::Double(1.5), &plain);
  seg.ScanCompareZoned(CompareOp::kGt, Value::Double(1.5), &zoned, &pruned);
  EXPECT_EQ(plain, zoned);
  EXPECT_EQ(pruned, 0u);  // fallback reports no pruning
}

TEST(PackedArrayWindowTest, WindowMatchesFullScanSlice) {
  Rng rng(77);
  for (int bits : {3, 9, 14}) {
    uint32_t mask = (uint32_t{1} << bits) - 1;
    std::vector<uint32_t> codes(3000);
    for (auto& c : codes) c = static_cast<uint32_t>(rng.Next()) & mask;
    PackedArray p = PackedArray::Pack(codes, bits);
    uint32_t lo = mask / 4, hi = mask / 2;
    BitVector full;
    p.ScanRange(lo, hi, &full);
    // Sweep awkward window boundaries (mid-word starts/ends).
    for (auto [begin, end] : std::vector<std::pair<size_t, size_t>>{
             {0, 3000}, {1, 2999}, {63, 64}, {100, 1777}, {2950, 3000},
             {500, 500}}) {
      BitVector windowed(codes.size());
      p.ScanRangeWindow(lo, hi, begin, end, &windowed);
      for (size_t i = 0; i < codes.size(); ++i) {
        bool expected = i >= begin && i < end && full.Get(i);
        EXPECT_EQ(windowed.Get(i), expected)
            << "bits=" << bits << " window=[" << begin << "," << end
            << ") i=" << i;
      }
    }
  }
}

TEST(ZoneMapTest, PruningDecisions) {
  std::vector<int64_t> values(4096);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<int64_t>(i);  // zone z covers [1024z, 1024z+1023]
  }
  ZoneMap zm = ZoneMap::Build(values, nullptr);
  ASSERT_EQ(zm.num_zones(), 4u);
  EXPECT_TRUE(zm.ZoneMayMatch(0, CompareOp::kLt, 10));
  EXPECT_FALSE(zm.ZoneMayMatch(1, CompareOp::kLt, 10));
  EXPECT_FALSE(zm.ZoneMayMatch(0, CompareOp::kGt, 1023));
  EXPECT_TRUE(zm.ZoneMayMatch(3, CompareOp::kGe, 4095));
  EXPECT_TRUE(zm.ZoneMayMatch(2, CompareOp::kEq, 2500));
  EXPECT_FALSE(zm.ZoneMayMatch(2, CompareOp::kEq, 5000));
  EXPECT_FALSE(zm.AnyZoneMayMatch(CompareOp::kGt, 5000));
  EXPECT_TRUE(zm.AnyZoneMayMatch(CompareOp::kGe, 0));
}

TEST(ZoneMapTest, AllNullZoneNeverMatches) {
  std::vector<int64_t> values(2048, 0);
  BitVector nulls(2048);
  for (size_t i = 0; i < 1024; ++i) nulls.Set(i);  // zone 0 all null
  ZoneMap zm = ZoneMap::Build(values, &nulls);
  EXPECT_FALSE(zm.ZoneMayMatch(0, CompareOp::kEq, 0));
  EXPECT_TRUE(zm.ZoneMayMatch(1, CompareOp::kEq, 0));
}

TEST(ZoneMapTest, GlobalBounds) {
  std::vector<int64_t> values = {5, -3, 12, 7};
  ZoneMap zm = ZoneMap::Build(values, nullptr, 2);
  double lo, hi;
  ASSERT_TRUE(zm.GlobalBounds(&lo, &hi));
  EXPECT_EQ(lo, -3);
  EXPECT_EQ(hi, 12);
}

TEST(ZoneMapTest, NeZonePruning) {
  // A zone where min==max==c is prunable for Ne.
  std::vector<int64_t> values(2048, 7);
  for (size_t i = 1024; i < 2048; ++i) values[i] = 9;
  ZoneMap zm = ZoneMap::Build(values, nullptr);
  EXPECT_FALSE(zm.ZoneMayMatch(0, CompareOp::kNe, 7));
  EXPECT_TRUE(zm.ZoneMayMatch(1, CompareOp::kNe, 7));
}

}  // namespace
}  // namespace oltap
