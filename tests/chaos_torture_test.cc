#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "dist/chaos.h"
#include "dist/network.h"
#include "dist/partition.h"
#include "sched/workload_manager.h"

namespace oltap {
namespace {

// Chaos torture: a ChaosPlan drives seeded rounds of partition / crash /
// link-noise faults against the replicated distributed engine while a
// WorkloadManager runs mixed OLTP+OLAP load over it. The single invariant
// under test is the write contract: a write that returned OK is durable —
// after the fault heals, the row is readable with exactly the committed
// value on a consistent replica set; a write that failed had no effect.
// "Zero lost committed transactions", checked against a shadow model.
//
// OLTAP_CHAOS_ROUNDS overrides the round count (sanitizer CI runs a
// reduced schedule; the nightly cron runs the full 24+).

constexpr int kNodes = 4;
constexpr int kWritersPerRound = 4;
constexpr int kWritesPerWriter = 40;

int RoundsFromEnv() {
  const char* env = std::getenv("OLTAP_CHAOS_ROUNDS");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 24;
}

Schema AccountSchema() {
  return SchemaBuilder()
      .AddInt64("id", false)
      .AddInt64("balance")
      .SetKey({"id"})
      .Build();
}

Row MakeRow(int64_t id, int64_t balance) {
  return Row{Value::Int64(id), Value::Int64(balance)};
}

DistributedEngine::Options EngineOptions() {
  DistributedEngine::Options opts;
  opts.num_nodes = kNodes;
  opts.num_partitions = 8;
  opts.replication_factor = 3;
  opts.net.base_latency_us = 0;
  opts.net.per_kb_us = 0;
  opts.rpc_retry.max_attempts = 3;
  opts.rpc_retry.initial_backoff_us = 1;
  opts.rpc_retry.max_backoff_us = 8;
  opts.rpc_retry.deadline_us = 50'000;
  opts.breaker.failure_threshold = 4;
  opts.breaker.open_cooldown_us = 0;  // recover instantly after heal
  opts.max_read_staleness = 1'000'000'000;
  return opts;
}

WorkloadManager::Options SchedOptions() {
  WorkloadManager::Options opts;
  opts.num_workers = 6;
  opts.policy = SchedulingPolicy::kOltpPriority;
  opts.olap_admission_limit = 4;
  opts.olap_degrade_threshold = 2;
  opts.degraded_batch_rows = 256;
  opts.memory_budget_bytes = 64 << 20;
  return opts;
}

TEST(ChaosTortureTest, NoCommittedWriteIsEverLost) {
  const int rounds = RoundsFromEnv();

  DistributedEngine engine(AccountSchema(), EngineOptions());
  WorkloadManager wm(SchedOptions());

  ChaosPlan::Options chaos;
  chaos.num_nodes = kNodes;
  chaos.rounds = rounds;
  chaos.seed = 42;
  chaos.max_jitter_us = 50;  // enough to reorder, cheap enough to run often
  ChaosPlan plan(chaos);
  SCOPED_TRACE("schedule: " + plan.Describe());

  // Shadow model of everything the engine acknowledged. Writers own
  // disjoint key ranges, so per-key history is totally ordered and the
  // expected value of a key is simply its last OK write.
  std::mutex shadow_mu;
  std::map<int64_t, int64_t> shadow;

  std::atomic<uint64_t> ok_writes{0};
  std::atomic<uint64_t> failed_writes{0};
  std::atomic<uint64_t> olap_ok{0};
  std::atomic<uint64_t> olap_shed{0};

  for (int r = 0; r < plan.num_rounds(); ++r) {
    SCOPED_TRACE("round " + std::to_string(r) + " (" +
                 ChaosPlan::KindToString(plan.round(r).kind) + ")");
    plan.Install(r, engine.network());

    std::vector<WorkloadManager::Submission> subs;
    // OLTP writers: insert fresh keys, then update a slice of them.
    // Clients are spread over all nodes — including faulted ones, whose
    // writes must fail *cleanly* (no effect), never silently succeed.
    for (int w = 0; w < kWritersPerRound; ++w) {
      WorkloadManager::QuerySpec spec;
      subs.push_back(wm.SubmitBudgeted(
          QueryClass::kOltp, spec,
          [&, r, w](const CancellationToken&,
                    const WorkloadManager::QueryGrant&) {
            std::map<int64_t, int64_t> committed;
            for (int k = 0; k < kWritesPerWriter; ++k) {
              int64_t id = static_cast<int64_t>(r) * 1'000'000 +
                           w * 10'000 + k;
              int client = (w + k) % kNodes;
              Status st = engine.InsertFrom(client, MakeRow(id, id));
              if (st.ok()) {
                committed[id] = id;
                ok_writes.fetch_add(1, std::memory_order_relaxed);
              } else {
                failed_writes.fetch_add(1, std::memory_order_relaxed);
              }
              // Update every 4th key we know committed.
              if (k % 4 == 0 && !committed.empty()) {
                int64_t target = committed.begin()->first;
                Status up = engine.UpdateFrom(client,
                                              MakeRow(target, target + 7));
                if (up.ok()) {
                  committed[target] = target + 7;
                  ok_writes.fetch_add(1, std::memory_order_relaxed);
                } else {
                  failed_writes.fetch_add(1, std::memory_order_relaxed);
                }
              }
            }
            std::lock_guard<std::mutex> lock(shadow_mu);
            for (const auto& [id, balance] : committed) {
              shadow[id] = balance;
            }
            return Status::OK();
          }));
    }
    // OLAP flood: scatter-gather scans; more than the admission limit so
    // shedding and degradation both trigger under pressure.
    for (int q = 0; q < 8; ++q) {
      WorkloadManager::QuerySpec spec;
      spec.est_memory_bytes = 1 << 20;
      subs.push_back(wm.SubmitBudgeted(
          QueryClass::kOlap, spec,
          [&](const CancellationToken&,
              const WorkloadManager::QueryGrant& grant) {
            // A degraded grant caps the scan batch; the scan itself must
            // stay correct either way (SumWhere over leaders).
            (void)grant;
            double sum = engine.SumWhere(1, CompareOp::kGe, 0, 1);
            EXPECT_GE(sum, 0.0);
            return Status::OK();
          }));
    }
    size_t round_shed = 0;
    for (auto& s : subs) {
      Status st = s.done.get();
      if (st.ok()) {
        olap_ok.fetch_add(1, std::memory_order_relaxed);
      } else {
        ASSERT_TRUE(st.IsResourceExhausted()) << st.ToString();
        ++round_shed;
      }
    }
    olap_shed.fetch_add(round_shed, std::memory_order_relaxed);

    // Heal, converge, and verify the full shadow: every acknowledged
    // write of every round so far must still be present and exact.
    plan.Restore(r, engine.network());
    engine.CatchUpReplicas();
    ASSERT_TRUE(engine.CheckReplicasConsistent()) << "after round " << r;
    {
      std::lock_guard<std::mutex> lock(shadow_mu);
      ASSERT_EQ(engine.TotalRows(), shadow.size()) << "after round " << r;
      for (const auto& [id, balance] : shadow) {
        auto got = engine.FailoverLookup(0, MakeRow(id, 0));
        ASSERT_TRUE(got.ok())
            << "lost committed key " << id << ": " << got.status().ToString();
        ASSERT_EQ((*got)[1].AsInt64(), balance) << "key " << id;
      }
    }
  }
  wm.Drain();

  // The schedule must have actually hurt: faulted rounds make some writes
  // fail, and the OLAP flood must have tripped admission control.
  EXPECT_GT(ok_writes.load(), 0u);
  EXPECT_GT(failed_writes.load(), 0u) << "chaos plan never bit";
  EXPECT_GT(olap_shed.load() + wm.degraded_admissions(), 0u);
  EXPECT_GT(engine.leader_failovers() + engine.quorum_failures(), 0u);
}

}  // namespace
}  // namespace oltap
