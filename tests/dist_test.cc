#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/rng.h"
#include "dist/coordinator.h"
#include "dist/network.h"
#include "dist/partition.h"
#include "failpoint_fixture.h"

namespace oltap {
namespace {

Schema AccountSchema() {
  return SchemaBuilder()
      .AddInt64("id", false)
      .AddInt64("balance")
      .SetKey({"id"})
      .Build();
}

Row MakeRow(int64_t id, int64_t balance) {
  return Row{Value::Int64(id), Value::Int64(balance)};
}

DistributedEngine::Options FastNet(int nodes, int partitions, int rf) {
  DistributedEngine::Options opts;
  opts.num_nodes = nodes;
  opts.num_partitions = partitions;
  opts.replication_factor = rf;
  opts.net.base_latency_us = 0;  // keep tests fast
  opts.net.per_kb_us = 0;
  return opts;
}

TEST(SimulatedNetworkTest, CountsTraffic) {
  SimulatedNetwork::Options opts;
  opts.base_latency_us = 0;
  SimulatedNetwork net(opts);
  net.Transfer(0, 1, 2048);
  net.Transfer(1, 1, 512);  // intra-node: free, uncounted
  net.RoundTrip(0, 2, 100, 100);
  EXPECT_EQ(net.messages(), 3u);
  EXPECT_EQ(net.bytes(), 2048u + 200u);
}

TEST(SimulatedNetworkTest, ResetZeroesPerInstanceCounters) {
  SimulatedNetwork::Options opts;
  opts.base_latency_us = 0;
  SimulatedNetwork net(opts);
  net.Transfer(0, 1, 1024);
  EXPECT_EQ(net.messages(), 1u);
  net.Reset();
  EXPECT_EQ(net.messages(), 0u);
  EXPECT_EQ(net.bytes(), 0u);
  net.Transfer(1, 0, 256);
  EXPECT_EQ(net.messages(), 1u);
  EXPECT_EQ(net.bytes(), 256u);
}

TEST(DistributedEngineTest, RoutingIsDeterministicAndBalanced) {
  DistributedEngine engine(AccountSchema(), FastNet(4, 16, 1));
  std::vector<int> hits(16, 0);
  Schema schema = AccountSchema();
  for (int64_t i = 0; i < 1600; ++i) {
    std::string key = EncodeKey(schema, MakeRow(i, 0));
    int p = engine.PartitionOf(key);
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 16);
    EXPECT_EQ(p, engine.PartitionOf(key));  // stable
    hits[p]++;
  }
  for (int h : hits) EXPECT_GT(h, 0);  // no empty partition at this scale
}

TEST(DistributedEngineTest, InsertLookupRoundTrip) {
  DistributedEngine engine(AccountSchema(), FastNet(4, 8, 3));
  for (int64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(engine.InsertFrom(0, MakeRow(i, i * 10)).ok());
  }
  EXPECT_EQ(engine.TotalRows(), 200u);
  Row out;
  ASSERT_TRUE(engine.LookupFrom(1, MakeRow(77, 0), &out));
  EXPECT_EQ(out[1].AsInt64(), 770);
  EXPECT_FALSE(engine.LookupFrom(1, MakeRow(999, 0), &out));
}

TEST(DistributedEngineTest, ReplicasStayConsistent) {
  DistributedEngine engine(AccountSchema(), FastNet(5, 10, 3));
  Rng rng(4);
  for (int64_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(engine.InsertFrom(0, MakeRow(i, i)).ok());
  }
  for (int k = 0; k < 100; ++k) {
    int64_t id = rng.UniformRange(0, 299);
    engine.UpdateFrom(1, MakeRow(id, id + 1000));
  }
  for (int k = 0; k < 50; ++k) {
    int64_t id = rng.UniformRange(0, 299);
    engine.DeleteFrom(2, MakeRow(id, 0));
  }
  EXPECT_TRUE(engine.CheckReplicasConsistent());
}

TEST(DistributedEngineTest, ScatterGatherSumMatchesLocalComputation) {
  DistributedEngine engine(AccountSchema(), FastNet(4, 8, 2));
  int64_t expected = 0;
  for (int64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(engine.InsertFrom(0, MakeRow(i, i)).ok());
    if (i % 2 == 0) expected += i;
  }
  double sum = engine.SumWhere(/*filter_col=*/1, CompareOp::kLt, 500,
                               /*agg_col=*/1);
  // filter: balance < 500 means i < 500 → all rows; narrow it:
  double even_sum =
      engine.SumWhere(0, CompareOp::kLt, 500, 1);  // id < 500: all
  EXPECT_DOUBLE_EQ(sum, 499.0 * 500 / 2);
  EXPECT_DOUBLE_EQ(even_sum, 499.0 * 500 / 2);
}

TEST(DistributedEngineTest, ConcurrentClientsScaleWithoutCorruption) {
  DistributedEngine engine(AccountSchema(), FastNet(4, 16, 3));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 250;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        int64_t id = t * kPerThread + i;
        if (!engine.InsertFrom(t % 4, MakeRow(id, 1)).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(engine.TotalRows(),
            static_cast<size_t>(kThreads) * kPerThread);
  EXPECT_TRUE(engine.CheckReplicasConsistent());
  double total = engine.SumWhere(1, CompareOp::kGe, 0, 1);
  EXPECT_DOUBLE_EQ(total, kThreads * kPerThread);
}

// 2PC tests arm failpoints; the fixture asserts none leak.
class TwoPhaseCommitTest : public FailpointTest {};

TEST_F(TwoPhaseCommitTest, AllYesCommits) {
  SimulatedNetwork net(SimulatedNetwork::Options{0, 0});
  TwoPhaseCoordinator coord(&net, 0);
  std::atomic<int> prepared{0}, committed{0};
  Status st = coord.Run(
      {1, 2, 3},
      [&](int) {
        prepared.fetch_add(1);
        return Status::OK();
      },
      [&](int, bool commit) {
        if (commit) committed.fetch_add(1);
      });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(prepared.load(), 3);
  EXPECT_EQ(committed.load(), 3);
  EXPECT_EQ(coord.commits(), 1u);
}

TEST_F(TwoPhaseCommitTest, OneNoAbortsAll) {
  SimulatedNetwork net(SimulatedNetwork::Options{0, 0});
  TwoPhaseCoordinator coord(&net, 0);
  std::atomic<int> rolled_back{0};
  Status st = coord.Run(
      {1, 2, 3},
      [&](int p) {
        return p == 2 ? Status::Aborted("conflict") : Status::OK();
      },
      [&](int, bool commit) {
        if (!commit) rolled_back.fetch_add(1);
      });
  EXPECT_TRUE(st.IsAborted());
  EXPECT_EQ(rolled_back.load(), 3);
  EXPECT_EQ(coord.aborts(), 1u);
}

TwoPhaseCoordinator::Options FastRetry(int max_attempts) {
  TwoPhaseCoordinator::Options opts;
  opts.retry.max_attempts = max_attempts;
  opts.retry.initial_backoff_us = 1;  // keep tests fast
  opts.retry.max_backoff_us = 4;
  return opts;
}

TEST_F(TwoPhaseCommitTest, LostPrepareIsRetriedThenCommits) {
  SimulatedNetwork net(SimulatedNetwork::Options{0, 0});
  TwoPhaseCoordinator coord(&net, 0, FastRetry(4));
  FailpointConfig cfg;
  cfg.max_fires = 2;  // first two PREPARE sends vanish in flight
  ScopedFailpoint lost("2pc.prepare.timeout", cfg);
  std::atomic<int> prepared{0}, committed{0};
  Status st = coord.Run(
      {1},
      [&](int) {
        prepared.fetch_add(1);
        return Status::OK();
      },
      [&](int, bool commit) {
        if (commit) committed.fetch_add(1);
      });
  EXPECT_TRUE(st.ok()) << st.ToString();
  // A lost request never reaches the participant: prepare ran exactly
  // once, on the delivery that finally got through.
  EXPECT_EQ(prepared.load(), 1);
  EXPECT_EQ(committed.load(), 1);
  EXPECT_EQ(coord.prepare_retries(), 2u);
  EXPECT_EQ(coord.commits(), 1u);
}

TEST_F(TwoPhaseCommitTest, SilentParticipantAbortsOnIndecision) {
  SimulatedNetwork net(SimulatedNetwork::Options{0, 0});
  TwoPhaseCoordinator coord(&net, 0, FastRetry(3));
  FailpointConfig cfg;
  cfg.max_fires = -1;  // every PREPARE is lost: participants stay silent
  ScopedFailpoint lost("2pc.prepare.timeout", cfg);
  std::atomic<int> prepared{0}, rolled_back{0};
  Status st = coord.Run(
      {1, 2, 3},
      [&](int) {
        prepared.fetch_add(1);
        return Status::OK();
      },
      [&](int, bool commit) {
        if (!commit) rolled_back.fetch_add(1);
      });
  EXPECT_TRUE(st.IsAborted());
  // Silence is a NO vote: abort reaches everyone, prepare reached no one.
  EXPECT_EQ(prepared.load(), 0);
  EXPECT_EQ(rolled_back.load(), 3);
  EXPECT_EQ(coord.indecision_aborts(), 1u);
  EXPECT_EQ(coord.prepare_retries(), 9u);  // 3 participants x 3 attempts
}

TEST_F(TwoPhaseCommitTest, LostAckRedeliversDecision) {
  SimulatedNetwork net(SimulatedNetwork::Options{0, 0});
  TwoPhaseCoordinator coord(&net, 0, FastRetry(3));
  FailpointConfig cfg;
  cfg.max_fires = 1;  // the first COMMIT ACK is lost
  ScopedFailpoint lost("2pc.ack.lost", cfg);
  std::atomic<int> finish_calls{0};
  std::atomic<int> commit_deliveries{0};
  Status st = coord.Run(
      {1},
      [&](int) { return Status::OK(); },
      [&](int, bool commit) {
        finish_calls.fetch_add(1);
        if (commit) commit_deliveries.fetch_add(1);
      });
  EXPECT_TRUE(st.ok());
  // The decision was redelivered after the lost ACK — finish must be
  // idempotent, and every delivery carried the same COMMIT decision.
  EXPECT_EQ(finish_calls.load(), 2);
  EXPECT_EQ(commit_deliveries.load(), 2);
  EXPECT_EQ(coord.finish_retries(), 1u);
  EXPECT_EQ(coord.unacked_finishes(), 0u);
}

TEST_F(TwoPhaseCommitTest, UnackedDecisionDoesNotChangeOutcome) {
  SimulatedNetwork net(SimulatedNetwork::Options{0, 0});
  TwoPhaseCoordinator coord(&net, 0, FastRetry(2));
  FailpointConfig cfg;
  cfg.max_fires = -1;  // no ACK ever arrives
  ScopedFailpoint lost("2pc.ack.lost", cfg);
  std::atomic<int> commit_deliveries{0};
  Status st = coord.Run(
      {1},
      [&](int) { return Status::OK(); },
      [&](int, bool commit) {
        if (commit) commit_deliveries.fetch_add(1);
      });
  // The decision is fixed once votes are in; a lost ACK cannot flip it.
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(commit_deliveries.load(), 2);
  EXPECT_EQ(coord.unacked_finishes(), 1u);
}

TEST_F(TwoPhaseCommitTest, CrossPartitionTransferAtomicity) {
  // Transfer between two accounts on different partitions under 2PC: the
  // total must be conserved whether the transaction commits or aborts.
  DistributedEngine engine(AccountSchema(), FastNet(4, 8, 1));
  ASSERT_TRUE(engine.InsertFrom(0, MakeRow(1, 500)).ok());
  ASSERT_TRUE(engine.InsertFrom(0, MakeRow(2, 500)).ok());

  TwoPhaseCoordinator coord(engine.network(), 0);
  auto transfer = [&](int64_t from, int64_t to, int64_t amount,
                      bool force_abort) {
    Row from_row, to_row;
    if (!engine.LookupFrom(0, MakeRow(from, 0), &from_row)) return;
    if (!engine.LookupFrom(0, MakeRow(to, 0), &to_row)) return;
    Status st = coord.Run(
        {engine.LeaderNode(engine.PartitionOf(
             EncodeKey(AccountSchema(), MakeRow(from, 0)))),
         engine.LeaderNode(engine.PartitionOf(
             EncodeKey(AccountSchema(), MakeRow(to, 0))))},
        [&](int) {
          return force_abort ? Status::Aborted("forced") : Status::OK();
        },
        [&](int, bool commit) { (void)commit; });
    if (st.ok()) {
      from_row[1] = Value::Int64(from_row[1].AsInt64() - amount);
      to_row[1] = Value::Int64(to_row[1].AsInt64() + amount);
      ASSERT_TRUE(engine.UpdateFrom(0, from_row).ok());
      ASSERT_TRUE(engine.UpdateFrom(0, to_row).ok());
    }
  };
  transfer(1, 2, 100, /*force_abort=*/false);
  transfer(2, 1, 50, /*force_abort=*/true);  // aborted: no effect
  double total = engine.SumWhere(0, CompareOp::kGe, 0, 1);
  EXPECT_DOUBLE_EQ(total, 1000.0);
  Row out;
  ASSERT_TRUE(engine.LookupFrom(0, MakeRow(1, 0), &out));
  EXPECT_EQ(out[1].AsInt64(), 400);
}

}  // namespace
}  // namespace oltap
