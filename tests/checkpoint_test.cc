#include <gtest/gtest.h>

#include "txn/checkpoint.h"

#include "common/rng.h"
#include "sql/session.h"

namespace oltap {
namespace {

std::string CreateSql() {
  return "CREATE TABLE t (id BIGINT NOT NULL, tag TEXT, v DOUBLE, "
         "PRIMARY KEY (id)) FORMAT COLUMN";
}

TEST(CheckpointTest, RoundTripRestoresVisibleState) {
  Database db;
  ASSERT_TRUE(db.Execute(CreateSql()).ok());
  Rng rng(1);
  for (int64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                           ", 'x', " + std::to_string(rng.NextDouble()) + ")")
                    .ok());
  }
  ASSERT_TRUE(db.Execute("DELETE FROM t WHERE id < 20").ok());
  db.MergeAll();

  Timestamp ts = db.txn_manager()->oracle()->CurrentReadTs();
  auto checkpoint = WriteCheckpoint(*db.catalog(), ts);
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.status().ToString();

  Database restored;
  ASSERT_TRUE(restored.Execute(CreateSql()).ok());
  auto stats = RestoreCheckpoint(*checkpoint, restored.catalog());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->ops_applied, 180u);
  restored.txn_manager()->AdvanceTo(stats->max_commit_ts);

  auto original = db.Execute("SELECT COUNT(*), SUM(v) FROM t");
  auto recovered = restored.Execute("SELECT COUNT(*), SUM(v) FROM t");
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->rows[0][0].AsInt64(),
            original->rows[0][0].AsInt64());
  EXPECT_DOUBLE_EQ(recovered->rows[0][1].AsDouble(),
                   original->rows[0][1].AsDouble());
}

TEST(CheckpointTest, CheckpointPlusWalTailRecovery) {
  Wal wal;
  std::string checkpoint;
  Timestamp checkpoint_ts = 0;
  std::vector<Row> expected;
  {
    Database db(&wal);
    ASSERT_TRUE(db.Execute(CreateSql()).ok());
    for (int64_t i = 0; i < 100; ++i) {
      ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                             ", 'pre', 1.0)")
                      .ok());
    }
    checkpoint_ts = db.txn_manager()->oracle()->CurrentReadTs();
    auto ck = WriteCheckpoint(*db.catalog(), checkpoint_ts);
    ASSERT_TRUE(ck.ok()) << ck.status().ToString();
    checkpoint = std::move(ck).value();

    // Post-checkpoint activity lives only in the WAL tail.
    ASSERT_TRUE(db.Execute("UPDATE t SET tag = 'post' WHERE id < 10").ok());
    ASSERT_TRUE(db.Execute("DELETE FROM t WHERE id >= 90").ok());
    ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (500, 'tail', 2.0)").ok());
    auto r = db.Execute("SELECT id, tag, v FROM t ORDER BY id");
    ASSERT_TRUE(r.ok());
    expected = r->rows;
  }

  Database recovered;
  ASSERT_TRUE(recovered.Execute(CreateSql()).ok());
  auto stats = RecoverFromCheckpointAndLog(checkpoint, wal.buffer(),
                                           recovered.catalog());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  recovered.txn_manager()->AdvanceTo(stats->max_commit_ts);

  auto r = recovered.Execute("SELECT id, tag, v FROM t ORDER BY id");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    for (size_t c = 0; c < expected[i].size(); ++c) {
      EXPECT_EQ(r->rows[i][c].ToString(), expected[i][c].ToString())
          << "row " << i << " col " << c;
    }
  }
}

TEST(CheckpointTest, SnapshotConsistentDespiteLaterWrites) {
  Database db;
  ASSERT_TRUE(db.Execute(CreateSql()).ok());
  for (int64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                           ", 'a', 1.0)")
                    .ok());
  }
  Timestamp ts = db.txn_manager()->oracle()->CurrentReadTs();
  // Writes after `ts` must not leak into the checkpoint.
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (999, 'late', 9.0)").ok());
  auto checkpoint = WriteCheckpoint(*db.catalog(), ts);
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.status().ToString();

  Database restored;
  ASSERT_TRUE(restored.Execute(CreateSql()).ok());
  auto stats = RestoreCheckpoint(*checkpoint, restored.catalog());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->ops_applied, 50u);
}

TEST(CheckpointTest, TornCheckpointRejected) {
  Database db;
  ASSERT_TRUE(db.Execute(CreateSql()).ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1, 'a', 1.0)").ok());
  auto ck = WriteCheckpoint(*db.catalog(),
                            db.txn_manager()->oracle()->CurrentReadTs());
  ASSERT_TRUE(ck.ok());
  std::string checkpoint = std::move(ck).value();
  checkpoint.resize(checkpoint.size() / 2);
  Database restored;
  ASSERT_TRUE(restored.Execute(CreateSql()).ok());
  auto stats =
      RecoverFromCheckpointAndLog(checkpoint, "", restored.catalog());
  EXPECT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kCorruption);
}

// --- Catalog + view sections (recovery from an empty catalog) -------------

TEST(CheckpointTest, RestoreIntoEmptyCatalogCreatesTables) {
  Database db;
  ASSERT_TRUE(db.Execute(CreateSql()).ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE r (k INT NOT NULL, s TEXT, "
                         "PRIMARY KEY (k)) FORMAT ROW")
                  .ok());
  for (int64_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                           ", 'x', 1.5)")
                    .ok());
    ASSERT_TRUE(db.Execute("INSERT INTO r VALUES (" + std::to_string(i) +
                           ", 'y')")
                    .ok());
  }
  auto checkpoint = WriteCheckpoint(*db.catalog(),
                                    db.txn_manager()->oracle()->CurrentReadTs());
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.status().ToString();

  // No CREATE TABLE on the restore side: the catalog section rebuilds both
  // tables, formats included.
  Database restored;
  CheckpointContents contents;
  auto stats = RestoreCheckpoint(*checkpoint, restored.catalog(), &contents);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(contents.tables_created, 2u);
  EXPECT_EQ(contents.tables_verified, 0u);
  restored.txn_manager()->AdvanceTo(stats->max_commit_ts);

  ASSERT_NE(restored.catalog()->GetTable("t"), nullptr);
  ASSERT_NE(restored.catalog()->GetTable("r"), nullptr);
  EXPECT_EQ(restored.catalog()->GetTable("t")->format(), TableFormat::kColumn);
  EXPECT_EQ(restored.catalog()->GetTable("r")->format(), TableFormat::kRow);
  auto n = restored.Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n->rows[0][0].AsInt64(), 30);
  // The recreated table is fully usable, keys included.
  EXPECT_FALSE(restored.Execute("INSERT INTO r VALUES (5, 'dup')").ok());
}

TEST(CheckpointTest, SchemaMismatchRejectedBeforeAnyData) {
  Database db;
  ASSERT_TRUE(db.Execute(CreateSql()).ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1, 'a', 1.0)").ok());
  auto checkpoint = WriteCheckpoint(*db.catalog(),
                                    db.txn_manager()->oracle()->CurrentReadTs());
  ASSERT_TRUE(checkpoint.ok());

  // Same table name, divergent schema: the restore must refuse up front
  // rather than splice checkpoint rows into the wrong shape.
  Database restored;
  ASSERT_TRUE(restored
                  .Execute("CREATE TABLE t (id BIGINT NOT NULL, other INT, "
                           "PRIMARY KEY (id)) FORMAT COLUMN")
                  .ok());
  auto stats = RestoreCheckpoint(*checkpoint, restored.catalog());
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kCorruption);
  auto n = restored.Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n->rows[0][0].AsInt64(), 0);  // untouched
}

TEST(CheckpointTest, ViewDdlsTravelInImageWithBackingTablesExcluded) {
  Database db;
  ASSERT_TRUE(db.Execute(CreateSql()).ok());
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                           ", 'g', 2.0)")
                    .ok());
  }
  ASSERT_TRUE(db.Execute("CREATE MATERIALIZED VIEW tv AS "
                         "SELECT tag, COUNT(*) AS n FROM t GROUP BY tag")
                  .ok());

  CheckpointWriteOptions options;
  options.exclude_tables = db.view_manager()->ViewNames();
  options.view_ddls = db.view_manager()->ViewDdls();
  ASSERT_EQ(options.view_ddls.size(), 1u);
  auto checkpoint = WriteCheckpoint(
      *db.catalog(), db.txn_manager()->oracle()->CurrentReadTs(), options);
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.status().ToString();

  Database restored;
  CheckpointContents contents;
  auto stats = RestoreCheckpoint(*checkpoint, restored.catalog(), &contents);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // The DDL rides along; the view's backing table does not.
  ASSERT_EQ(contents.view_ddls.size(), 1u);
  EXPECT_EQ(contents.view_ddls[0], options.view_ddls[0]);
  EXPECT_NE(restored.catalog()->GetTable("t"), nullptr);
  EXPECT_EQ(restored.catalog()->GetTable("tv"), nullptr);
}

// --- Checkpoint chain: manifest + recovery-image selection ----------------

std::string ImageWithRows(Database* db, int64_t lo, int64_t hi) {
  for (int64_t i = lo; i < hi; ++i) {
    EXPECT_TRUE(db->Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                            ", 'm', 1.0)")
                    .ok());
  }
  auto ck = WriteCheckpoint(*db->catalog(),
                            db->txn_manager()->oracle()->CurrentReadTs());
  EXPECT_TRUE(ck.ok());
  return std::move(ck).value();
}

CheckpointStore TwoImageStore(Database* db) {
  CheckpointStore store;
  std::string a = ImageWithRows(db, 0, 10);
  std::string b = ImageWithRows(db, 10, 20);
  std::vector<CheckpointManifestEntry> entries;
  uint64_t id = 1;
  for (std::string* img : {&a, &b}) {
    CheckpointManifestEntry e;
    e.id = id;
    e.ts = CheckpointTimestamp(*img).value();
    e.checksum = CheckpointChecksum(*img);
    e.bytes = img->size();
    entries.push_back(e);
    store.images.push_back(CheckpointStore::Image{id, e.ts, std::move(*img)});
    ++id;
  }
  store.manifest = SerializeManifest(entries);
  return store;
}

TEST(CheckpointTest, ManifestRoundTripAndTearDetection) {
  std::vector<CheckpointManifestEntry> entries(2);
  entries[0] = CheckpointManifestEntry{1, 100, 0xdeadbeef, 4096};
  entries[1] = CheckpointManifestEntry{2, 200, 0xfeedface, 8192};
  std::string data = SerializeManifest(entries);

  auto parsed = ParseManifest(data);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[1].id, 2u);
  EXPECT_EQ((*parsed)[1].ts, 200u);
  EXPECT_EQ((*parsed)[1].checksum, 0xfeedfaceu);
  EXPECT_EQ((*parsed)[1].bytes, 8192u);

  // A tear anywhere fails the self-checksum.
  std::string torn = data.substr(0, data.size() - 3);
  auto bad = ParseManifest(torn);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kCorruption);
  // So does a bit flip.
  std::string flipped = data;
  flipped[data.size() / 2] ^= 0x40;
  EXPECT_FALSE(ParseManifest(flipped).ok());
}

TEST(CheckpointTest, SelectRecoveryImagePrefersNewestManifestEntry) {
  Database db;
  ASSERT_TRUE(db.Execute(CreateSql()).ok());
  CheckpointStore store = TwoImageStore(&db);
  size_t fallbacks = 99;
  auto image = SelectRecoveryImage(store, &fallbacks);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  EXPECT_EQ(image->id, 2u);
  EXPECT_EQ(fallbacks, 0u);
}

TEST(CheckpointTest, TornNewestImageFallsBackToOlderEntry) {
  Database db;
  ASSERT_TRUE(db.Execute(CreateSql()).ok());
  CheckpointStore store = TwoImageStore(&db);
  // Tear the newest image on "disk"; the manifest still endorses it, but
  // selection verifies the checksum and falls back.
  store.images[1].data.resize(store.images[1].data.size() / 2);
  size_t fallbacks = 0;
  auto image = SelectRecoveryImage(store, &fallbacks);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  EXPECT_EQ(image->id, 1u);
  EXPECT_GE(fallbacks, 1u);

  // The survivor actually restores.
  Database restored;
  auto stats = RestoreCheckpoint(image->data, restored.catalog());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->ops_applied, 10u);
}

TEST(CheckpointTest, TornManifestFallsBackToImageScan) {
  Database db;
  ASSERT_TRUE(db.Execute(CreateSql()).ok());
  CheckpointStore store = TwoImageStore(&db);
  store.manifest.resize(store.manifest.size() - 5);
  size_t fallbacks = 0;
  auto image = SelectRecoveryImage(store, &fallbacks);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  EXPECT_EQ(image->id, 2u);  // newest valid image wins even without manifest
  EXPECT_GE(fallbacks, 1u);
}

TEST(CheckpointTest, NoUsableImageReportsNotFound) {
  Database db;
  ASSERT_TRUE(db.Execute(CreateSql()).ok());
  CheckpointStore store = TwoImageStore(&db);
  for (auto& img : store.images) img.data.resize(img.data.size() / 2);
  auto image = SelectRecoveryImage(store);
  ASSERT_FALSE(image.ok());
  EXPECT_TRUE(image.status().IsNotFound()) << image.status().ToString();

  CheckpointStore empty;
  EXPECT_TRUE(SelectRecoveryImage(empty).status().IsNotFound());
}

}  // namespace
}  // namespace oltap
