#include <gtest/gtest.h>

#include "txn/checkpoint.h"

#include "common/rng.h"
#include "sql/session.h"

namespace oltap {
namespace {

std::string CreateSql() {
  return "CREATE TABLE t (id BIGINT NOT NULL, tag TEXT, v DOUBLE, "
         "PRIMARY KEY (id)) FORMAT COLUMN";
}

TEST(CheckpointTest, RoundTripRestoresVisibleState) {
  Database db;
  ASSERT_TRUE(db.Execute(CreateSql()).ok());
  Rng rng(1);
  for (int64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                           ", 'x', " + std::to_string(rng.NextDouble()) + ")")
                    .ok());
  }
  ASSERT_TRUE(db.Execute("DELETE FROM t WHERE id < 20").ok());
  db.MergeAll();

  Timestamp ts = db.txn_manager()->oracle()->CurrentReadTs();
  auto checkpoint = WriteCheckpoint(*db.catalog(), ts);
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.status().ToString();

  Database restored;
  ASSERT_TRUE(restored.Execute(CreateSql()).ok());
  auto stats = RestoreCheckpoint(*checkpoint, restored.catalog());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->ops_applied, 180u);
  restored.txn_manager()->AdvanceTo(stats->max_commit_ts);

  auto original = db.Execute("SELECT COUNT(*), SUM(v) FROM t");
  auto recovered = restored.Execute("SELECT COUNT(*), SUM(v) FROM t");
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->rows[0][0].AsInt64(),
            original->rows[0][0].AsInt64());
  EXPECT_DOUBLE_EQ(recovered->rows[0][1].AsDouble(),
                   original->rows[0][1].AsDouble());
}

TEST(CheckpointTest, CheckpointPlusWalTailRecovery) {
  Wal wal;
  std::string checkpoint;
  Timestamp checkpoint_ts = 0;
  std::vector<Row> expected;
  {
    Database db(&wal);
    ASSERT_TRUE(db.Execute(CreateSql()).ok());
    for (int64_t i = 0; i < 100; ++i) {
      ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                             ", 'pre', 1.0)")
                      .ok());
    }
    checkpoint_ts = db.txn_manager()->oracle()->CurrentReadTs();
    auto ck = WriteCheckpoint(*db.catalog(), checkpoint_ts);
    ASSERT_TRUE(ck.ok()) << ck.status().ToString();
    checkpoint = std::move(ck).value();

    // Post-checkpoint activity lives only in the WAL tail.
    ASSERT_TRUE(db.Execute("UPDATE t SET tag = 'post' WHERE id < 10").ok());
    ASSERT_TRUE(db.Execute("DELETE FROM t WHERE id >= 90").ok());
    ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (500, 'tail', 2.0)").ok());
    auto r = db.Execute("SELECT id, tag, v FROM t ORDER BY id");
    ASSERT_TRUE(r.ok());
    expected = r->rows;
  }

  Database recovered;
  ASSERT_TRUE(recovered.Execute(CreateSql()).ok());
  auto stats = RecoverFromCheckpointAndLog(checkpoint, wal.buffer(),
                                           recovered.catalog());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  recovered.txn_manager()->AdvanceTo(stats->max_commit_ts);

  auto r = recovered.Execute("SELECT id, tag, v FROM t ORDER BY id");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    for (size_t c = 0; c < expected[i].size(); ++c) {
      EXPECT_EQ(r->rows[i][c].ToString(), expected[i][c].ToString())
          << "row " << i << " col " << c;
    }
  }
}

TEST(CheckpointTest, SnapshotConsistentDespiteLaterWrites) {
  Database db;
  ASSERT_TRUE(db.Execute(CreateSql()).ok());
  for (int64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                           ", 'a', 1.0)")
                    .ok());
  }
  Timestamp ts = db.txn_manager()->oracle()->CurrentReadTs();
  // Writes after `ts` must not leak into the checkpoint.
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (999, 'late', 9.0)").ok());
  auto checkpoint = WriteCheckpoint(*db.catalog(), ts);
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.status().ToString();

  Database restored;
  ASSERT_TRUE(restored.Execute(CreateSql()).ok());
  auto stats = RestoreCheckpoint(*checkpoint, restored.catalog());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->ops_applied, 50u);
}

TEST(CheckpointTest, TornCheckpointRejected) {
  Database db;
  ASSERT_TRUE(db.Execute(CreateSql()).ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1, 'a', 1.0)").ok());
  auto ck = WriteCheckpoint(*db.catalog(),
                            db.txn_manager()->oracle()->CurrentReadTs());
  ASSERT_TRUE(ck.ok());
  std::string checkpoint = std::move(ck).value();
  checkpoint.resize(checkpoint.size() / 2);
  Database restored;
  ASSERT_TRUE(restored.Execute(CreateSql()).ok());
  auto stats =
      RecoverFromCheckpointAndLog(checkpoint, "", restored.catalog());
  EXPECT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace oltap
