// Model-checking fuzz: a random DML workload is applied simultaneously to
// the engine (through SQL, autocommit) and to an in-memory reference model;
// the full table contents and aggregates must agree at every checkpoint,
// across all three storage formats, with delta merges interleaved at
// random. This is the "whole stack agrees with a trivially correct
// implementation" property that unit tests cannot provide.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/rng.h"
#include "sql/session.h"

namespace oltap {
namespace {

struct ModelRow {
  std::string tag;
  int64_t v;
};

class ModelCheckTest : public ::testing::TestWithParam<TableFormat> {};

TEST_P(ModelCheckTest, RandomDmlMatchesReferenceModel) {
  Database db;
  std::string fmt = TableFormatToString(GetParam());
  ASSERT_TRUE(db.Execute("CREATE TABLE t (id BIGINT NOT NULL, tag TEXT, "
                         "v BIGINT, PRIMARY KEY (id)) FORMAT " +
                         fmt)
                  .ok());
  std::map<int64_t, ModelRow> model;
  Rng rng(2026);
  const char* tags[] = {"red", "green", "blue", "gold"};
  constexpr int64_t kKeySpace = 200;

  auto verify = [&] {
    auto r = db.Execute("SELECT id, tag, v FROM t ORDER BY id");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->rows.size(), model.size()) << "format " << fmt;
    size_t i = 0;
    int64_t expected_sum = 0;
    for (const auto& [id, row] : model) {
      EXPECT_EQ(r->rows[i][0].AsInt64(), id);
      EXPECT_EQ(r->rows[i][1].AsString(), row.tag);
      EXPECT_EQ(r->rows[i][2].AsInt64(), row.v);
      expected_sum += row.v;
      ++i;
    }
    auto agg = db.Execute("SELECT COUNT(*), SUM(v) FROM t");
    ASSERT_TRUE(agg.ok());
    EXPECT_EQ(agg->rows[0][0].AsInt64(),
              static_cast<int64_t>(model.size()));
    if (!model.empty()) {
      EXPECT_EQ(agg->rows[0][1].AsInt64(), expected_sum);
    }
    // A filtered group-by must agree too.
    auto grouped = db.Execute(
        "SELECT tag, COUNT(*) FROM t WHERE v >= 0 GROUP BY tag ORDER BY tag");
    ASSERT_TRUE(grouped.ok());
    std::map<std::string, int64_t> expected_groups;
    for (const auto& [id, row] : model) {
      if (row.v >= 0) expected_groups[row.tag]++;
    }
    ASSERT_EQ(grouped->rows.size(), expected_groups.size());
    size_t g = 0;
    for (const auto& [tag, count] : expected_groups) {
      EXPECT_EQ(grouped->rows[g][0].AsString(), tag);
      EXPECT_EQ(grouped->rows[g][1].AsInt64(), count);
      ++g;
    }
  };

  for (int step = 0; step < 1200; ++step) {
    int64_t id = rng.UniformRange(0, kKeySpace - 1);
    uint64_t action = rng.Uniform(100);
    bool exists = model.count(id) > 0;
    if (action < 45) {
      // Insert: succeeds iff absent (both sides must agree on the error).
      const char* tag = tags[rng.Uniform(4)];
      int64_t v = rng.UniformRange(-50, 50);
      auto r = db.Execute("INSERT INTO t VALUES (" + std::to_string(id) +
                          ", '" + tag + "', " + std::to_string(v) + ")");
      EXPECT_EQ(r.ok(), !exists) << "step " << step << " id " << id;
      if (!exists) model[id] = ModelRow{tag, v};
    } else if (action < 75) {
      // Update by key.
      int64_t v = rng.UniformRange(-50, 50);
      auto r = db.Execute("UPDATE t SET v = " + std::to_string(v) +
                          " WHERE id = " + std::to_string(id));
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_EQ(r->affected, exists ? 1u : 0u);
      if (exists) model[id].v = v;
    } else if (action < 95) {
      // Delete by key.
      auto r = db.Execute("DELETE FROM t WHERE id = " + std::to_string(id));
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_EQ(r->affected, exists ? 1u : 0u);
      model.erase(id);
    } else {
      // Range delete, exercising predicate DML.
      int64_t cut = rng.UniformRange(-50, 50);
      auto r = db.Execute("DELETE FROM t WHERE v > " + std::to_string(cut));
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      size_t expected = 0;
      for (auto it = model.begin(); it != model.end();) {
        if (it->second.v > cut) {
          ++expected;
          it = model.erase(it);
        } else {
          ++it;
        }
      }
      EXPECT_EQ(r->affected, expected);
    }
    if (step % 150 == 149) {
      if (GetParam() != TableFormat::kRow && rng.Bernoulli(0.7)) {
        db.MergeAll();
      }
      verify();
    }
  }
  verify();
}

INSTANTIATE_TEST_SUITE_P(AllFormats, ModelCheckTest,
                         ::testing::Values(TableFormat::kRow,
                                           TableFormat::kColumn,
                                           TableFormat::kDual),
                         [](const auto& info) {
                           return TableFormatToString(info.param);
                         });

}  // namespace
}  // namespace oltap
