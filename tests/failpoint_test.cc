#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace oltap {
namespace {

// A library function with an inline failpoint, as production code uses it.
Status GuardedOperation() {
  OLTAP_FAILPOINT("test.guarded.op");
  return Status::OK();
}

TEST(FailpointTest, InactiveByDefault) {
  Failpoint& fp = FailpointRegistry::Get().Register("test.inactive");
  EXPECT_FALSE(fp.IsActive());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(GuardedOperation().ok());
  }
}

TEST(FailpointTest, MacroReturnsInjectedStatus) {
  FailpointConfig cfg;
  cfg.status = Status::Unavailable("boom");
  ScopedFailpoint armed("test.guarded.op", cfg);
  Status st = GuardedOperation();
  EXPECT_TRUE(st.IsUnavailable());
  EXPECT_EQ(st.message(), "boom");
  // max_fires defaults to 1: the site disarmed itself.
  EXPECT_TRUE(GuardedOperation().ok());
}

TEST(FailpointTest, SkipPassesThroughThenFires) {
  FailpointConfig cfg;
  cfg.skip = 3;
  cfg.max_fires = 2;
  FailpointRegistry::Get().Enable("test.skip", cfg);
  Failpoint* fp = FailpointRegistry::Get().Find("test.skip");
  ASSERT_NE(fp, nullptr);
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(!fp->Evaluate().ok());
  EXPECT_EQ(fired, (std::vector<bool>{false, false, false, true, true, false}));
  EXPECT_EQ(fp->fires(), 2u);
  EXPECT_FALSE(fp->IsActive());  // exhausted -> disarmed
}

TEST(FailpointTest, UnlimitedFiresUntilDisabled) {
  FailpointConfig cfg;
  cfg.max_fires = -1;
  FailpointRegistry::Get().Enable("test.unlimited", cfg);
  Failpoint* fp = FailpointRegistry::Get().Find("test.unlimited");
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(fp->Evaluate().ok());
  FailpointRegistry::Get().Disable("test.unlimited");
  EXPECT_FALSE(fp->IsActive());
  EXPECT_TRUE(fp->Evaluate().ok());
}

TEST(FailpointTest, ProbabilityIsDeterministicPerSeed) {
  FailpointConfig cfg;
  cfg.probability = 0.3;
  cfg.max_fires = -1;
  cfg.seed = 7;
  FailpointRegistry::Get().Enable("test.prob", cfg);
  Failpoint* fp = FailpointRegistry::Get().Find("test.prob");
  std::vector<bool> first;
  for (int i = 0; i < 200; ++i) first.push_back(!fp->Evaluate().ok());
  size_t fires = static_cast<size_t>(fp->fires());
  EXPECT_GT(fires, 30u);  // ~60 expected
  EXPECT_LT(fires, 100u);
  // Re-arming with the same seed reproduces the exact firing pattern.
  FailpointRegistry::Get().Enable("test.prob", cfg);
  std::vector<bool> second;
  for (int i = 0; i < 200; ++i) second.push_back(!fp->Evaluate().ok());
  EXPECT_EQ(first, second);
  FailpointRegistry::Get().Disable("test.prob");
}

TEST(FailpointTest, DisableAllDisarmsEverything) {
  FailpointConfig cfg;
  cfg.max_fires = -1;
  FailpointRegistry::Get().Enable("test.all.a", cfg);
  FailpointRegistry::Get().Enable("test.all.b", cfg);
  FailpointRegistry::Get().DisableAll();
  EXPECT_FALSE(FailpointRegistry::Get().Find("test.all.a")->IsActive());
  EXPECT_FALSE(FailpointRegistry::Get().Find("test.all.b")->IsActive());
}

TEST(FailpointTest, ConcurrentEvaluateFiresExactlyMaxTimes) {
  constexpr int kFires = 64;
  constexpr int kThreads = 8;
  constexpr int kHitsPerThread = 500;
  FailpointConfig cfg;
  cfg.max_fires = kFires;
  FailpointRegistry::Get().Enable("test.concurrent", cfg);
  Failpoint* fp = FailpointRegistry::Get().Find("test.concurrent");
  std::atomic<int> observed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kHitsPerThread; ++i) {
        // Mirror the macro's fast path: check IsActive before Evaluate.
        if (fp->IsActive() && !fp->Evaluate().ok()) {
          observed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(observed.load(), kFires);
  EXPECT_FALSE(fp->IsActive());
}

TEST(FailpointTest, ExpressionFormReportsWithoutReturning) {
  FailpointConfig cfg;
  cfg.status = Status::DeadlineExceeded("late");
  ScopedFailpoint armed("test.expr", cfg);
  Status st = OLTAP_FAILPOINT_STATUS("test.expr");
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(OLTAP_FAILPOINT_STATUS("test.expr").ok());
}

}  // namespace
}  // namespace oltap
