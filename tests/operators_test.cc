#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "exec/executor.h"
#include "exec/fused_kernels.h"
#include "exec/operators.h"
#include "storage/table.h"

namespace oltap {
namespace {

Schema SalesSchema() {
  return SchemaBuilder()
      .AddInt64("id", false)
      .AddInt64("region", false)
      .AddString("product")
      .AddDouble("amount")
      .SetKey({"id"})
      .Build();
}

// Builds a deterministic sales table with `n` rows in the given format.
std::unique_ptr<Table> MakeSales(size_t n, TableFormat format,
                                 bool via_delta = false) {
  auto table = std::make_unique<Table>("sales", SalesSchema(), format);
  const char* products[] = {"ant", "bee", "cat", "dog"};
  Rng rng(99);
  std::vector<Row> rows;
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(Row{Value::Int64(static_cast<int64_t>(i)),
                       Value::Int64(static_cast<int64_t>(i % 5)),
                       Value::String(products[i % 4]),
                       Value::Double(static_cast<double>(i) * 0.5)});
  }
  if (!via_delta && format != TableFormat::kRow) {
    OLTAP_CHECK(table->BulkLoadToMain(rows, 1).ok());
  } else {
    for (const Row& r : rows) {
      OLTAP_CHECK(table->InsertCommitted(r, 1).ok());
    }
  }
  return table;
}

TEST(ScanOpTest, FullScanAllFormats) {
  for (TableFormat f :
       {TableFormat::kRow, TableFormat::kColumn, TableFormat::kDual}) {
    auto table = MakeSales(100, f);
    ScanOp scan(table.get(), 10, nullptr);
    std::vector<Row> rows = CollectRows(&scan);
    EXPECT_EQ(rows.size(), 100u) << TableFormatToString(f);
  }
}

TEST(ScanOpTest, PushedPredicateMatchesRowFilter) {
  auto table = MakeSales(1000, TableFormat::kColumn);
  ExprPtr pred = Expr::And(
      Expr::Compare(CompareOp::kLt, Expr::Column(1, ValueType::kInt64),
                    Expr::Constant(Value::Int64(2))),
      Expr::Compare(CompareOp::kEq, Expr::Column(2, ValueType::kString),
                    Expr::Constant(Value::String("ant"))));
  ScanOp scan(table.get(), 10, pred);
  std::vector<Row> rows = CollectRows(&scan);
  size_t expected = 0;
  for (size_t i = 0; i < 1000; ++i) {
    if (i % 5 < 2 && i % 4 == 0) ++expected;
  }
  EXPECT_EQ(rows.size(), expected);
  for (const Row& r : rows) {
    EXPECT_LT(r[1].AsInt64(), 2);
    EXPECT_EQ(r[2].AsString(), "ant");
  }
}

TEST(ScanOpTest, ResidualPredicateApplied) {
  auto table = MakeSales(500, TableFormat::kColumn);
  // amount > id*0.4 is not a pushable (col op const) term.
  ExprPtr pred = Expr::Compare(
      CompareOp::kGt, Expr::Column(3, ValueType::kDouble),
      Expr::Arith(Expr::Kind::kMul, Expr::Column(0, ValueType::kInt64),
                  Expr::Constant(Value::Double(0.4))));
  ScanOp scan(table.get(), 10, pred);
  std::vector<Row> rows = CollectRows(&scan);
  // amount = id*0.5 > id*0.4 for id > 0.
  EXPECT_EQ(rows.size(), 499u);
}

TEST(ScanOpTest, ProjectionSelectsAndOrders) {
  auto table = MakeSales(10, TableFormat::kColumn);
  ScanOp scan(table.get(), 10, nullptr, {3, 0});
  scan.Open();
  Batch batch;
  ASSERT_TRUE(scan.NextBatch(&batch));
  ASSERT_EQ(batch.num_columns(), 2u);
  EXPECT_EQ(batch.columns[0].type(), ValueType::kDouble);
  EXPECT_EQ(batch.columns[1].type(), ValueType::kInt64);
  EXPECT_DOUBLE_EQ(batch.columns[0].GetDouble(4), 2.0);
  EXPECT_EQ(batch.columns[1].GetInt64(4), 4);
}

TEST(ScanOpTest, ScansDeltaAndMainTogether) {
  auto table = MakeSales(100, TableFormat::kColumn);
  // 20 more rows into the delta.
  for (int64_t i = 100; i < 120; ++i) {
    ASSERT_TRUE(table
                    ->InsertCommitted(Row{Value::Int64(i), Value::Int64(1),
                                          Value::String("new"),
                                          Value::Double(1.0)},
                                      5)
                    .ok());
  }
  ScanOp scan(table.get(), 10, nullptr);
  EXPECT_EQ(CollectRows(&scan).size(), 120u);
  // At an older timestamp the delta rows are invisible.
  ScanOp old_scan(table.get(), 2, nullptr);
  EXPECT_EQ(CollectRows(&old_scan).size(), 100u);
}

TEST(ScanOpTest, ZonePruningSkipsImpossiblePredicates) {
  auto table = MakeSales(8192, TableFormat::kColumn);
  ExprPtr pred = Expr::Compare(CompareOp::kGt,
                               Expr::Column(0, ValueType::kInt64),
                               Expr::Constant(Value::Int64(1'000'000)));
  ScanOp scan(table.get(), 10, pred);
  EXPECT_EQ(CollectRows(&scan).size(), 0u);
  EXPECT_GT(scan.zones_pruned(), 0u);
}

TEST(FilterOpTest, FiltersBatches) {
  auto table = MakeSales(100, TableFormat::kColumn);
  auto scan = std::make_unique<ScanOp>(table.get(), 10, nullptr);
  FilterOp filter(std::move(scan),
                  Expr::Compare(CompareOp::kGe,
                                Expr::Column(0, ValueType::kInt64),
                                Expr::Constant(Value::Int64(90))));
  EXPECT_EQ(CollectRows(&filter).size(), 10u);
}

TEST(ProjectOpTest, ComputesExpressions) {
  auto table = MakeSales(10, TableFormat::kColumn);
  auto scan = std::make_unique<ScanOp>(table.get(), 10, nullptr);
  std::vector<ExprPtr> exprs = {
      Expr::Arith(Expr::Kind::kAdd, Expr::Column(0, ValueType::kInt64),
                  Expr::Constant(Value::Int64(1000))),
  };
  ProjectOp project(std::move(scan), std::move(exprs));
  std::vector<Row> rows = CollectRows(&project);
  ASSERT_EQ(rows.size(), 10u);
  EXPECT_EQ(rows[3][0].AsInt64(), 1003);
}

TEST(HashAggOpTest, GlobalAggregates) {
  auto table = MakeSales(100, TableFormat::kColumn);
  auto scan = std::make_unique<ScanOp>(table.get(), 10, nullptr);
  std::vector<AggSpec> aggs(5);
  aggs[0].fn = AggSpec::Fn::kCountStar;
  aggs[1].fn = AggSpec::Fn::kSum;
  aggs[1].arg = Expr::Column(3, ValueType::kDouble);
  aggs[2].fn = AggSpec::Fn::kMin;
  aggs[2].arg = Expr::Column(0, ValueType::kInt64);
  aggs[3].fn = AggSpec::Fn::kMax;
  aggs[3].arg = Expr::Column(0, ValueType::kInt64);
  aggs[4].fn = AggSpec::Fn::kAvg;
  aggs[4].arg = Expr::Column(0, ValueType::kInt64);
  HashAggOp agg(std::move(scan), {}, std::move(aggs));
  std::vector<Row> rows = CollectRows(&agg);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt64(), 100);
  EXPECT_DOUBLE_EQ(rows[0][1].AsDouble(), 99.0 * 100 / 2 * 0.5);
  EXPECT_EQ(rows[0][2].AsInt64(), 0);
  EXPECT_EQ(rows[0][3].AsInt64(), 99);
  EXPECT_DOUBLE_EQ(rows[0][4].AsDouble(), 49.5);
}

TEST(HashAggOpTest, GroupByWithNullSkipping) {
  Schema schema = SchemaBuilder().AddInt64("g").AddInt64("v").Build();
  auto table = std::make_unique<Table>("t", schema, TableFormat::kColumn);
  ASSERT_TRUE(table->InsertCommitted({Value::Int64(1), Value::Int64(10)}, 1).ok());
  ASSERT_TRUE(table->InsertCommitted({Value::Int64(1), Value::Null()}, 1).ok());
  ASSERT_TRUE(table->InsertCommitted({Value::Int64(2), Value::Int64(5)}, 1).ok());
  auto scan = std::make_unique<ScanOp>(table.get(), 10, nullptr);
  std::vector<AggSpec> aggs(3);
  aggs[0].fn = AggSpec::Fn::kCountStar;
  aggs[1].fn = AggSpec::Fn::kCount;
  aggs[1].arg = Expr::Column(1, ValueType::kInt64);
  aggs[2].fn = AggSpec::Fn::kSum;
  aggs[2].arg = Expr::Column(1, ValueType::kInt64);
  HashAggOp agg(std::move(scan), {Expr::Column(0, ValueType::kInt64)},
                std::move(aggs));
  std::vector<Row> rows = CollectRows(&agg);
  ASSERT_EQ(rows.size(), 2u);
  std::map<int64_t, Row> by_group;
  for (Row& r : rows) by_group[r[0].AsInt64()] = r;
  EXPECT_EQ(by_group[1][1].AsInt64(), 2);  // COUNT(*)
  EXPECT_EQ(by_group[1][2].AsInt64(), 1);  // COUNT(v) skips NULL
  EXPECT_EQ(by_group[1][3].AsInt64(), 10);
  EXPECT_EQ(by_group[2][3].AsInt64(), 5);
}

TEST(HashAggOpTest, EmptyInputGlobalAggregate) {
  auto table = MakeSales(0, TableFormat::kColumn, /*via_delta=*/true);
  auto scan = std::make_unique<ScanOp>(table.get(), 10, nullptr);
  std::vector<AggSpec> aggs(2);
  aggs[0].fn = AggSpec::Fn::kCountStar;
  aggs[1].fn = AggSpec::Fn::kSum;
  aggs[1].arg = Expr::Column(3, ValueType::kDouble);
  HashAggOp agg(std::move(scan), {}, std::move(aggs));
  std::vector<Row> rows = CollectRows(&agg);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt64(), 0);
  EXPECT_TRUE(rows[0][1].is_null());  // SUM of nothing is NULL
}

TEST(HashJoinOpTest, InnerEquiJoin) {
  Schema left_schema = SchemaBuilder().AddInt64("k").AddString("l").Build();
  Schema right_schema = SchemaBuilder().AddInt64("k").AddInt64("r").Build();
  auto left = std::make_unique<Table>("l", left_schema, TableFormat::kColumn);
  auto right = std::make_unique<Table>("r", right_schema, TableFormat::kColumn);
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(left->InsertCommitted(
                        {Value::Int64(i), Value::String("L" + std::to_string(i))},
                        1)
                    .ok());
  }
  // Right side: keys 5..14, with key 5 duplicated.
  for (int64_t i = 5; i < 15; ++i) {
    ASSERT_TRUE(
        right->InsertCommitted({Value::Int64(i), Value::Int64(i * 100)}, 1)
            .ok());
  }
  ASSERT_TRUE(
      right->InsertCommitted({Value::Int64(5), Value::Int64(999)}, 1).ok());

  auto lscan = std::make_unique<ScanOp>(left.get(), 10, nullptr);
  auto rscan = std::make_unique<ScanOp>(right.get(), 10, nullptr);
  HashJoinOp join(std::move(lscan), std::move(rscan), {0}, {0});
  std::vector<Row> rows = CollectRows(&join);
  // Matching keys 5..9 (5 keys), key 5 matches twice → 6 rows.
  EXPECT_EQ(rows.size(), 6u);
  std::multiset<int64_t> right_vals;
  for (const Row& r : rows) {
    ASSERT_EQ(r.size(), 4u);
    EXPECT_EQ(r[0].AsInt64(), r[2].AsInt64());  // join keys equal
    right_vals.insert(r[3].AsInt64());
  }
  EXPECT_EQ(right_vals.count(999), 1u);
  EXPECT_EQ(right_vals.count(500), 1u);
}

TEST(HashJoinOpTest, NullKeysNeverJoin) {
  Schema schema = SchemaBuilder().AddInt64("k").Build();
  auto left = std::make_unique<Table>("l", schema, TableFormat::kColumn);
  auto right = std::make_unique<Table>("r", schema, TableFormat::kColumn);
  ASSERT_TRUE(left->InsertCommitted({Value::Null()}, 1).ok());
  ASSERT_TRUE(right->InsertCommitted({Value::Null()}, 1).ok());
  auto lscan = std::make_unique<ScanOp>(left.get(), 10, nullptr);
  auto rscan = std::make_unique<ScanOp>(right.get(), 10, nullptr);
  HashJoinOp join(std::move(lscan), std::move(rscan), {0}, {0});
  EXPECT_EQ(CollectRows(&join).size(), 0u);
}

TEST(SortOpTest, MultiKeyWithDescending) {
  auto table = MakeSales(20, TableFormat::kColumn);
  auto scan = std::make_unique<ScanOp>(table.get(), 10, nullptr);
  // Sort by region asc, id desc.
  SortOp sort(std::move(scan),
              {{1, false}, {0, true}});
  std::vector<Row> rows = CollectRows(&sort);
  ASSERT_EQ(rows.size(), 20u);
  for (size_t i = 1; i < rows.size(); ++i) {
    int64_t pr = rows[i - 1][1].AsInt64(), cr = rows[i][1].AsInt64();
    EXPECT_LE(pr, cr);
    if (pr == cr) {
      EXPECT_GT(rows[i - 1][0].AsInt64(), rows[i][0].AsInt64());
    }
  }
}

TEST(SortOpTest, NullsSortFirst) {
  Schema schema = SchemaBuilder().AddInt64("v").Build();
  auto table = std::make_unique<Table>("t", schema, TableFormat::kColumn);
  ASSERT_TRUE(table->InsertCommitted({Value::Int64(5)}, 1).ok());
  ASSERT_TRUE(table->InsertCommitted({Value::Null()}, 1).ok());
  ASSERT_TRUE(table->InsertCommitted({Value::Int64(1)}, 1).ok());
  auto scan = std::make_unique<ScanOp>(table.get(), 10, nullptr);
  SortOp sort(std::move(scan), {{0, false}});
  std::vector<Row> rows = CollectRows(&sort);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_TRUE(rows[0][0].is_null());
  EXPECT_EQ(rows[1][0].AsInt64(), 1);
}

TEST(TopNOpTest, MatchesSortThenLimit) {
  auto table = MakeSales(500, TableFormat::kColumn);
  std::vector<SortOp::SortKey> keys = {{1, false}, {0, true}};
  auto reference = [&] {
    auto scan = std::make_unique<ScanOp>(table.get(), 10, nullptr);
    SortOp sort(std::move(scan), keys);
    std::vector<Row> all = CollectRows(&sort);
    all.resize(std::min<size_t>(all.size(), 17));
    return all;
  }();
  auto scan = std::make_unique<ScanOp>(table.get(), 10, nullptr);
  TopNOp topn(std::move(scan), keys, 17);
  std::vector<Row> rows = CollectRows(&topn);
  ASSERT_EQ(rows.size(), reference.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i][0].AsInt64(), reference[i][0].AsInt64()) << i;
    EXPECT_EQ(rows[i][1].AsInt64(), reference[i][1].AsInt64()) << i;
  }
}

TEST(TopNOpTest, EdgeLimits) {
  auto table = MakeSales(50, TableFormat::kColumn);
  std::vector<SortOp::SortKey> keys = {{0, true}};
  {
    auto scan = std::make_unique<ScanOp>(table.get(), 10, nullptr);
    TopNOp zero(std::move(scan), keys, 0);
    EXPECT_EQ(CollectRows(&zero).size(), 0u);
  }
  {
    auto scan = std::make_unique<ScanOp>(table.get(), 10, nullptr);
    TopNOp bigger(std::move(scan), keys, 500);
    std::vector<Row> rows = CollectRows(&bigger);
    ASSERT_EQ(rows.size(), 50u);
    EXPECT_EQ(rows[0][0].AsInt64(), 49);  // descending
    EXPECT_EQ(rows[49][0].AsInt64(), 0);
  }
}

TEST(LimitOpTest, TruncatesOutput) {
  auto table = MakeSales(100, TableFormat::kColumn);
  auto scan = std::make_unique<ScanOp>(table.get(), 10, nullptr);
  LimitOp limit(std::move(scan), 7);
  EXPECT_EQ(CollectRows(&limit).size(), 7u);

  auto scan2 = std::make_unique<ScanOp>(table.get(), 10, nullptr);
  LimitOp limit0(std::move(scan2), 0);
  EXPECT_EQ(CollectRows(&limit0).size(), 0u);
}

TEST(ExecutionModeTest, AllModesAgree) {
  auto table = MakeSales(5000, TableFormat::kColumn);
  auto snap = table->GetColumnSnapshot(10);
  ASSERT_TRUE(snap.has_value());
  for (int64_t threshold : {0, 1, 2, 4, 5}) {
    SimpleAggQuery q;
    q.filter_col = 1;  // region
    q.op = CompareOp::kLt;
    q.constant = threshold;
    q.agg_col = 3;  // amount
    double tuple = RunSimpleAgg(*snap->main, q, ExecutionMode::kTupleAtATime);
    double vec = RunSimpleAgg(*snap->main, q, ExecutionMode::kVectorized);
    double fused = RunSimpleAgg(*snap->main, q, ExecutionMode::kFused);
    EXPECT_DOUBLE_EQ(tuple, vec) << "threshold " << threshold;
    EXPECT_DOUBLE_EQ(tuple, fused) << "threshold " << threshold;
  }
}

TEST(FusedKernelTest, CountAndSumProduct) {
  auto table = MakeSales(1000, TableFormat::kColumn);
  auto snap = table->GetColumnSnapshot(10);
  const MainFragment& main = *snap->main;
  int64_t count = fused::CountWhereInt64(main.column(1), CompareOp::kEq, 3);
  EXPECT_EQ(count, 200);  // region==3 hits every 5th row
  double sp = fused::SumProductWhereInt64(main.column(1), CompareOp::kGe, 0,
                                          main.column(0), main.column(3));
  double expected = 0;
  for (int64_t i = 0; i < 1000; ++i) {
    expected += static_cast<double>(i) * (static_cast<double>(i) * 0.5);
  }
  EXPECT_DOUBLE_EQ(sp, expected);
}

}  // namespace
}  // namespace oltap
