#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "exec/shared_scan.h"
#include "storage/table.h"

namespace oltap {
namespace {

std::unique_ptr<Table> MakeTable(size_t n) {
  Schema schema = SchemaBuilder()
                      .AddInt64("id", false)
                      .AddInt64("filter", false)
                      .AddInt64("value", false)
                      .SetKey({"id"})
                      .Build();
  auto table = std::make_unique<Table>("t", schema, TableFormat::kColumn);
  Rng rng(5);
  std::vector<Row> rows;
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(Row{Value::Int64(static_cast<int64_t>(i)),
                       Value::Int64(rng.UniformRange(0, 99)),
                       Value::Int64(rng.UniformRange(0, 1000))});
  }
  OLTAP_CHECK(table->BulkLoadToMain(rows, 1).ok());
  return table;
}

std::vector<SimpleAggQuery> MakeQueries(int n) {
  std::vector<SimpleAggQuery> queries;
  Rng rng(7);
  for (int i = 0; i < n; ++i) {
    SimpleAggQuery q;
    q.filter_col = 1;
    q.op = static_cast<CompareOp>(rng.Uniform(6));
    q.constant = rng.UniformRange(0, 99);
    q.agg_col = 2;
    queries.push_back(q);
  }
  return queries;
}

TEST(SharedScanTest, SharedEqualsIndependent) {
  auto table = MakeTable(20000);
  auto snap = table->GetColumnSnapshot(10);
  std::vector<SimpleAggQuery> queries = MakeQueries(16);
  auto shared = ExecuteSharedOnce(*snap->main, queries, 1024);
  auto indep = ExecuteIndependent(*snap->main, queries);
  ASSERT_EQ(shared.size(), indep.size());
  for (size_t i = 0; i < shared.size(); ++i) {
    EXPECT_EQ(shared[i].count, indep[i].count) << "query " << i;
    EXPECT_DOUBLE_EQ(shared[i].sum, indep[i].sum) << "query " << i;
  }
}

TEST(SharedScanTest, ResultsMatchVectorizedEngine) {
  auto table = MakeTable(10000);
  auto snap = table->GetColumnSnapshot(10);
  std::vector<SimpleAggQuery> queries = MakeQueries(8);
  auto results = ExecuteIndependent(*snap->main, queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    double expected =
        RunSimpleAgg(*snap->main, queries[i], ExecutionMode::kVectorized);
    EXPECT_DOUBLE_EQ(results[i].sum, expected) << "query " << i;
  }
}

TEST(ClockScanTest, QueriesCompleteWithCorrectResults) {
  auto table = MakeTable(50000);
  auto snap = table->GetColumnSnapshot(10);
  std::vector<SimpleAggQuery> queries = MakeQueries(12);
  auto expected = ExecuteIndependent(*snap->main, queries);

  ClockScanServer server(snap->main.get(), /*chunk_rows=*/4096);
  std::vector<std::future<ScanQueryResult>> futures;
  for (const SimpleAggQuery& q : queries) {
    futures.push_back(server.Submit(q));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    ScanQueryResult r = futures[i].get();
    EXPECT_EQ(r.count, expected[i].count) << "query " << i;
    EXPECT_DOUBLE_EQ(r.sum, expected[i].sum) << "query " << i;
  }
  server.Stop();
  EXPECT_GT(server.chunks_scanned(), 0u);
}

TEST(ClockScanTest, MidRotationAttachStillExact) {
  auto table = MakeTable(40000);
  auto snap = table->GetColumnSnapshot(10);
  ClockScanServer server(snap->main.get(), /*chunk_rows=*/1024);

  // Keep the clock busy with a stream of queries, attaching new ones at
  // arbitrary clock positions; every result must still be exact.
  std::vector<SimpleAggQuery> queries = MakeQueries(30);
  auto expected = ExecuteIndependent(*snap->main, queries);
  std::vector<std::future<ScanQueryResult>> futures;
  for (const SimpleAggQuery& q : queries) {
    futures.push_back(server.Submit(q));
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    ScanQueryResult r = futures[i].get();
    EXPECT_EQ(r.count, expected[i].count) << "query " << i;
    EXPECT_DOUBLE_EQ(r.sum, expected[i].sum) << "query " << i;
  }
  server.Stop();
}

TEST(ClockScanTest, StopIsIdempotentAndSafeWithIdleServer) {
  auto table = MakeTable(1000);
  auto snap = table->GetColumnSnapshot(10);
  ClockScanServer server(snap->main.get());
  server.Stop();
  server.Stop();
}

}  // namespace
}  // namespace oltap
