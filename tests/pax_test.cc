#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"
#include "storage/pax_page.h"

namespace oltap {
namespace {

// All three layouts must agree on every operation — they differ only
// physically.
class LayoutTriple {
 public:
  explicit LayoutTriple(size_t cols)
      : row_(cols), col_(cols), pax_(cols, 1024) {}

  void Append(const std::vector<int64_t>& values) {
    row_.AppendRow(values.data());
    col_.AppendRow(values.data());
    pax_.AppendRow(values.data());
  }

  RowLayout row_;
  ColumnLayout col_;
  PaxLayout pax_;
};

TEST(PaxLayoutTest, AppendAndPointAccessAgree) {
  constexpr size_t kCols = 4;
  LayoutTriple t(kCols);
  Rng rng(1);
  std::vector<std::vector<int64_t>> rows;
  for (int r = 0; r < 500; ++r) {
    std::vector<int64_t> row(kCols);
    for (auto& v : row) v = rng.UniformRange(-1000, 1000);
    rows.push_back(row);
    t.Append(row);
  }
  ASSERT_EQ(t.row_.num_rows(), 500u);
  ASSERT_EQ(t.col_.num_rows(), 500u);
  ASSERT_EQ(t.pax_.num_rows(), 500u);
  int64_t buf_r[kCols], buf_c[kCols], buf_p[kCols];
  for (size_t r = 0; r < rows.size(); ++r) {
    t.row_.GetRow(r, buf_r);
    t.col_.GetRow(r, buf_c);
    t.pax_.GetRow(r, buf_p);
    for (size_t c = 0; c < kCols; ++c) {
      EXPECT_EQ(buf_r[c], rows[r][c]);
      EXPECT_EQ(buf_c[c], rows[r][c]);
      EXPECT_EQ(buf_p[c], rows[r][c]);
      EXPECT_EQ(t.row_.Get(r, c), rows[r][c]);
      EXPECT_EQ(t.col_.Get(r, c), rows[r][c]);
      EXPECT_EQ(t.pax_.Get(r, c), rows[r][c]);
    }
  }
}

TEST(PaxLayoutTest, AggregatesAgree) {
  constexpr size_t kCols = 3;
  LayoutTriple t(kCols);
  Rng rng(2);
  for (int r = 0; r < 2000; ++r) {
    std::vector<int64_t> row(kCols);
    for (auto& v : row) v = rng.UniformRange(0, 100);
    t.Append(row);
  }
  for (size_t c = 0; c < kCols; ++c) {
    int64_t expected = t.row_.SumColumn(c);
    EXPECT_EQ(t.col_.SumColumn(c), expected);
    EXPECT_EQ(t.pax_.SumColumn(c), expected);
  }
  for (int64_t threshold : {0, 25, 50, 100, 101}) {
    int64_t expected = t.row_.SumWhere(0, threshold, 2);
    EXPECT_EQ(t.col_.SumWhere(0, threshold, 2), expected);
    EXPECT_EQ(t.pax_.SumWhere(0, threshold, 2), expected);
  }
}

TEST(PaxLayoutTest, UpdatesVisibleEverywhere) {
  LayoutTriple t(2);
  int64_t row[2] = {1, 2};
  t.Append({1, 2});
  t.Append({3, 4});
  t.row_.Update(1, 0, 99);
  t.col_.Update(1, 0, 99);
  t.pax_.Update(1, 0, 99);
  t.row_.GetRow(1, row);
  EXPECT_EQ(row[0], 99);
  EXPECT_EQ(t.col_.Get(1, 0), 99);
  EXPECT_EQ(t.pax_.Get(1, 0), 99);
}

TEST(PaxLayoutTest, PageGeometry) {
  PaxLayout pax(4, 16 * 1024);
  // 16KiB page, 4 int64 columns → 512 rows per page.
  EXPECT_EQ(pax.rows_per_page(), 512u);
  for (int r = 0; r < 1025; ++r) {
    int64_t row[4] = {r, r, r, r};
    pax.AppendRow(row);
  }
  EXPECT_EQ(pax.num_rows(), 1025u);
  EXPECT_EQ(pax.Get(1024, 2), 1024);
}

TEST(GroupedLayoutTest, AgreesWithRowLayout) {
  constexpr size_t kCols = 6;
  RowLayout reference(kCols);
  GroupedLayout grouped(kCols, {{0, 3}, {1}, {2, 4, 5}});
  Rng rng(4);
  for (int r = 0; r < 1000; ++r) {
    std::vector<int64_t> row(kCols);
    for (auto& v : row) v = rng.UniformRange(0, 500);
    reference.AppendRow(row.data());
    grouped.AppendRow(row.data());
  }
  int64_t buf_ref[kCols], buf_grp[kCols];
  for (size_t r = 0; r < 1000; r += 37) {
    reference.GetRow(r, buf_ref);
    grouped.GetRow(r, buf_grp);
    for (size_t c = 0; c < kCols; ++c) EXPECT_EQ(buf_ref[c], buf_grp[c]);
  }
  for (size_t c = 0; c < kCols; ++c) {
    EXPECT_EQ(grouped.SumColumn(c), reference.SumColumn(c));
  }
  // Same-group and cross-group filtered sums.
  EXPECT_EQ(grouped.SumWhere(0, 250, 3), reference.SumWhere(0, 250, 3));
  EXPECT_EQ(grouped.SumWhere(0, 250, 1), reference.SumWhere(0, 250, 1));
  EXPECT_EQ(grouped.SumWhere(2, 100, 5), reference.SumWhere(2, 100, 5));
  grouped.Update(10, 4, 9999);
  EXPECT_EQ(grouped.Get(10, 4), 9999);
}

TEST(GroupedLayoutTest, DegenerateGroupings) {
  // One group == NSM; one group per column == DSM.
  GroupedLayout nsm(3, {{0, 1, 2}});
  GroupedLayout dsm(3, {{0}, {1}, {2}});
  int64_t row[3] = {1, 2, 3};
  nsm.AppendRow(row);
  dsm.AppendRow(row);
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(nsm.Get(0, c), row[c]);
    EXPECT_EQ(dsm.Get(0, c), row[c]);
  }
  EXPECT_EQ(nsm.group_of(0), nsm.group_of(2));
  EXPECT_NE(dsm.group_of(0), dsm.group_of(2));
}

TEST(DataMorphingTest, GroupsCoAccessedColumns) {
  // Workload: queries always touch {0,3} together and {1,2} together;
  // column 4 is accessed alone.
  std::vector<std::vector<int>> workload;
  for (int i = 0; i < 50; ++i) {
    workload.push_back({0, 3});
    workload.push_back({1, 2});
  }
  for (int i = 0; i < 20; ++i) workload.push_back({4});
  auto groups = ChooseColumnGroups(5, workload);
  ASSERT_EQ(groups.size(), 3u);
  // Each column appears exactly once.
  std::set<int> seen;
  for (const auto& g : groups) {
    for (int c : g) EXPECT_TRUE(seen.insert(c).second);
  }
  EXPECT_EQ(seen.size(), 5u);
  auto contains = [&](std::vector<int> want) {
    return std::find(groups.begin(), groups.end(), want) != groups.end();
  };
  EXPECT_TRUE(contains({0, 3}));
  EXPECT_TRUE(contains({1, 2}));
  EXPECT_TRUE(contains({4}));
  // The morphed layout is directly usable.
  GroupedLayout layout(5, groups);
  int64_t row[5] = {1, 2, 3, 4, 5};
  layout.AppendRow(row);
  for (size_t c = 0; c < 5; ++c) {
    EXPECT_EQ(layout.Get(0, c), row[c]);
  }
}

TEST(DataMorphingTest, NoWorkloadMeansSingletons) {
  auto groups = ChooseColumnGroups(4, {});
  EXPECT_EQ(groups.size(), 4u);
}

TEST(DataMorphingTest, MaxGroupWidthRespected) {
  // All 6 columns always co-accessed, but width capped at 3.
  std::vector<std::vector<int>> workload(30, {0, 1, 2, 3, 4, 5});
  auto groups = ChooseColumnGroups(6, workload, 0.25, 3);
  for (const auto& g : groups) EXPECT_LE(g.size(), 3u);
  size_t total = 0;
  for (const auto& g : groups) total += g.size();
  EXPECT_EQ(total, 6u);
}

TEST(PaxLayoutTest, EmptyLayoutsSumToZero) {
  LayoutTriple t(2);
  EXPECT_EQ(t.row_.SumColumn(0), 0);
  EXPECT_EQ(t.col_.SumColumn(0), 0);
  EXPECT_EQ(t.pax_.SumColumn(0), 0);
}

}  // namespace
}  // namespace oltap
