#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/failpoint.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "sql/session.h"
#include "txn/wal.h"
#include "workload/chbench.h"
#include "workload/driver.h"

namespace oltap {
namespace {

// Group-commit crash torture at driver scale: seeded rounds run the
// ConcurrentDriver's contended TPC-C mix with group commit on, kill the
// durability path mid-batch (torn batch boundary / fsync fault / log-
// writer crash / fsync stall), then "crash the process" — recover a fresh
// database from the bytes the log actually holds — and audit against the
// driver's shadow model:
//   zero acked-commit loss:     every acknowledged NewOrder is in the
//                               recovered orders table;
//   zero unacked resurrection:  the recovered row counts equal loaded +
//                               exactly the acknowledged commits, so a
//                               commit whose batch tore (it was never
//                               acked) can never reappear.
//
// OLTAP_TORTURE_ROUNDS overrides the round count (sanitizer CI runs a
// reduced schedule; the chaos nightly runs the full 24+).

constexpr Timestamp kFarFuture = 1'000'000'000;

int RoundsFromEnv() {
  const char* env = std::getenv("OLTAP_TORTURE_ROUNDS");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 24;
}

CHConfig TortureConfig() {
  CHConfig config;
  config.warehouses = 2;  // 4 workers on 2 warehouses: contended
  config.districts_per_warehouse = 2;
  config.customers_per_district = 10;
  config.items = 50;
  config.initial_orders_per_district = 5;
  return config;
}

int64_t CountVisibleRows(Database* db, const std::string& table) {
  int64_t n = 0;
  db->catalog()->GetTable(table)->ScanVisible(kFarFuture,
                                              [&](const Row&) { ++n; });
  return n;
}

enum class Fault { kTornBatch, kFsyncError, kWriterCrash, kFsyncStall };

const char* FaultName(Fault f) {
  switch (f) {
    case Fault::kTornBatch:
      return "torn-batch";
    case Fault::kFsyncError:
      return "fsync-error";
    case Fault::kWriterCrash:
      return "writer-crash";
    case Fault::kFsyncStall:
      return "fsync-stall";
  }
  return "?";
}

TEST(GroupCommitTortureTest, AckedCommitsSurviveCrashUnackedNeverResurrect) {
  const int rounds = RoundsFromEnv();
  ThreadPool pool(4);
  uint64_t fires_total = 0;

  for (int round = 0; round < rounds; ++round) {
    const Fault fault = static_cast<Fault>(round % 4);
    SCOPED_TRACE("round " + std::to_string(round) + " fault " +
                 FaultName(fault));
    Rng rng(0x70a7 + static_cast<uint64_t>(round));

    // fsync-fault rounds run against a real file with fsync_on_commit, so
    // the injected fault hits the actual durability call; the recovery
    // image is then the file's bytes. Other rounds use the in-memory log.
    const bool file_backed =
        fault == Fault::kFsyncError || fault == Fault::kFsyncStall;
    std::string path = ::testing::TempDir() + "/oltap_gct_" +
                       std::to_string(round) + ".log";
    std::remove(path.c_str());
    std::unique_ptr<Wal> wal;
    if (file_backed) {
      Wal::Options wopts;
      wopts.fsync_on_commit = true;
      auto opened = Wal::OpenFile(path, wopts);
      ASSERT_TRUE(opened.ok()) << opened.status().ToString();
      wal = std::move(*opened);
    } else {
      wal = std::make_unique<Wal>();
    }

    auto db = std::make_unique<Database>(wal.get());
    CHConfig config = TortureConfig();
    CHBenchmark bench(db.get(), config);
    ASSERT_TRUE(bench.CreateTables().ok());
    ASSERT_TRUE(bench.Load().ok());  // bulk load at ts 0, not logged

    const int64_t base_orders = CountVisibleRows(db.get(), "orders");
    const int64_t base_history = CountVisibleRows(db.get(), "history");

    DriverOptions opts;
    opts.oltp_workers = 4;
    opts.olap_workers = 1;
    opts.ops_per_worker = 25;
    opts.seed = 1000 + static_cast<uint64_t>(round);
    opts.audit_commits = true;
    opts.group_commit = true;
    opts.group_max_batch = 4u << rng.Uniform(4);         // 4..32
    opts.group_persist_interval_us =
        static_cast<int64_t>(rng.Uniform(3)) * 100;      // 0/100/200
    opts.merge_delta_threshold = 64;
    opts.merge_interval_ms = 1;

    // Arm the round's fault mid-run: skip a few healthy batches first so
    // the tear lands in the middle of the committed stream.
    const char* site = nullptr;
    FailpointConfig cfg;
    cfg.skip = static_cast<int>(rng.Uniform(6));
    switch (fault) {
      case Fault::kTornBatch:
        site = "wal.batch.torn";
        cfg.status = Status::Unavailable("torture: torn batch boundary");
        break;
      case Fault::kFsyncError:
        site = "wal.fsync.error";
        cfg.status = Status::Unavailable("torture: fsync fault");
        break;
      case Fault::kWriterCrash:
        site = "logwriter.crash";
        cfg.status = Status::Internal("torture: log writer died");
        break;
      case Fault::kFsyncStall:
        site = "wal.fsync.stall";
        cfg.max_fires = 3;
        cfg.status = Status::Unavailable("torture: device stall");
        break;
    }

    DriverReport report;
    uint64_t fires = 0;
    {
      ScopedFailpoint armed(site, cfg);
      ConcurrentDriver driver(&bench, opts);
      report = driver.Run();
      fires = FailpointRegistry::Get().Find(site)->fires();
      fires_total += fires;
    }

    // Per-worker ledger stays exact even under faults.
    for (const WorkerResult& w : report.workers) {
      EXPECT_EQ(w.stats.total() + w.failed, w.ops_issued);
    }

    // A fired torn batch seals the log; the driver must abort the run
    // with a reason instead of grinding retries against a dead log.
    if (fault == Fault::kTornBatch && fires > 0) {
      EXPECT_TRUE(wal->sealed());
      EXPECT_TRUE(report.aborted);
      EXPECT_FALSE(report.abort_reason.empty());
    }
    if (fault == Fault::kFsyncStall) {
      // Stalls delay commits but fail nothing.
      EXPECT_FALSE(report.aborted);
      EXPECT_FALSE(wal->sealed());
    }

    // --- Crash. The recovery image is what the log actually holds.
    std::string disk;
    if (file_backed) {
      std::FILE* f = std::fopen(path.c_str(), "rb");
      ASSERT_NE(f, nullptr);
      char chunk[1 << 16];
      size_t n;
      while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
        disk.append(chunk, n);
      }
      std::fclose(f);
    } else {
      disk = wal->buffer();
    }

    // Recover into a fresh database: same deterministic bulk load (not
    // logged), then replay — parallel partitioned on odd rounds, serial
    // on even, asserting both paths against the same shadow model.
    auto recovered = std::make_unique<Database>();
    CHBenchmark recovered_bench(recovered.get(), config);
    ASSERT_TRUE(recovered_bench.CreateTables().ok());
    ASSERT_TRUE(recovered_bench.Load().ok());
    auto stats = recovered->RecoverFromWal(
        disk, (round % 2 == 1) ? &pool : nullptr);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    if (fault == Fault::kTornBatch && fires > 0) {
      EXPECT_TRUE(stats->truncated_tail) << "torn batch must read as a tear";
    }

    // Zero acked-commit loss: every acknowledged NewOrder is present.
    const Table* orders = recovered->catalog()->GetTable("orders");
    std::set<std::tuple<int64_t, int64_t, int64_t>> acked;
    uint64_t committed_new_orders = 0;
    for (const WorkerResult& w : report.workers) {
      committed_new_orders += w.stats.new_order;
      for (const NewOrderAck& ack : w.acks) {
        EXPECT_TRUE(acked.emplace(ack.w, ack.d, ack.o_id).second)
            << "duplicate ack " << ack.w << "/" << ack.d << "/" << ack.o_id;
        Row key{Value::Int64(ack.w), Value::Int64(ack.d),
                Value::Int64(ack.o_id)};
        Row out;
        EXPECT_TRUE(orders->Lookup(EncodeKey(orders->schema(), key),
                                   kFarFuture, &out))
            << "acked order lost after crash: " << ack.w << "/" << ack.d
            << "/" << ack.o_id;
      }
    }
    EXPECT_EQ(acked.size(), committed_new_orders);

    // Zero unacked resurrection: recovered state holds exactly the acked
    // commits on top of the load — a commit in a torn/failed batch (never
    // acknowledged) must not reappear.
    EXPECT_EQ(CountVisibleRows(recovered.get(), "orders"),
              base_orders + static_cast<int64_t>(acked.size()));
    EXPECT_EQ(CountVisibleRows(recovered.get(), "history"),
              base_history + static_cast<int64_t>(report.txns.payment));

    if (file_backed) std::remove(path.c_str());
  }

  // The schedule actually injected faults (guards against the failpoint
  // sites silently moving out of the batch path).
  EXPECT_GT(fires_total, 0u);
}

}  // namespace
}  // namespace oltap
