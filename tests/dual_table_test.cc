#include <gtest/gtest.h>

#include <set>
#include <string>

#include "storage/dual_table.h"
#include "storage/table.h"

namespace oltap {
namespace {

Schema TestSchema() {
  return SchemaBuilder()
      .AddInt64("id", false)
      .AddInt64("v")
      .SetKey({"id"})
      .Build();
}

Row MakeRow(int64_t id, int64_t v) {
  return Row{Value::Int64(id), Value::Int64(v)};
}

std::string KeyOf(int64_t id) {
  Schema s = TestSchema();
  return EncodeKey(s, MakeRow(id, 0));
}

// Reads the same logical state through both mirrors and compares.
void ExpectMirrorsAgree(DualTable* table, Timestamp read_ts) {
  std::set<std::pair<int64_t, int64_t>> row_side, col_side;
  table->row_side()->ScanVisible(read_ts, [&](const Row& r) {
    row_side.insert({r[0].AsInt64(), r[1].AsInt64()});
  });
  ColumnTable::Snapshot snap = table->GetColumnSnapshot(read_ts);
  BitVector mask;
  snap.main->VisibleMask(read_ts, &mask);
  for (size_t i = mask.FindNextSet(0); i < mask.size();
       i = mask.FindNextSet(i + 1)) {
    Row r = snap.main->GetRow(static_cast<RowId>(i));
    col_side.insert({r[0].AsInt64(), r[1].AsInt64()});
  }
  auto visit = [&](uint32_t, const Row& r) {
    col_side.insert({r[0].AsInt64(), r[1].AsInt64()});
  };
  if (snap.frozen != nullptr) snap.frozen->ForEachVisible(read_ts, visit);
  snap.delta->ForEachVisible(read_ts, visit);
  EXPECT_EQ(row_side, col_side) << "at ts " << read_ts;
}

TEST(RowTableTest, InsertLookupDeleteUpdate) {
  RowTable table(TestSchema());
  ASSERT_TRUE(table.InsertCommitted(MakeRow(1, 10), 5).ok());
  Row out;
  ASSERT_TRUE(table.Lookup(KeyOf(1), 5, &out));
  EXPECT_EQ(out[1].AsInt64(), 10);
  EXPECT_FALSE(table.Lookup(KeyOf(1), 4, &out));

  ASSERT_TRUE(table.UpdateCommitted(KeyOf(1), MakeRow(1, 20), 8).ok());
  ASSERT_TRUE(table.Lookup(KeyOf(1), 7, &out));
  EXPECT_EQ(out[1].AsInt64(), 10);
  ASSERT_TRUE(table.Lookup(KeyOf(1), 8, &out));
  EXPECT_EQ(out[1].AsInt64(), 20);

  ASSERT_TRUE(table.DeleteCommitted(KeyOf(1), 12).ok());
  EXPECT_FALSE(table.Lookup(KeyOf(1), 12, &out));
  ASSERT_TRUE(table.Lookup(KeyOf(1), 11, &out));
}

TEST(RowTableTest, DuplicateInsertRejected) {
  RowTable table(TestSchema());
  ASSERT_TRUE(table.InsertCommitted(MakeRow(1, 10), 5).ok());
  EXPECT_EQ(table.InsertCommitted(MakeRow(1, 11), 6).code(),
            StatusCode::kAlreadyExists);
}

TEST(RowTableTest, ScanVisibleIsKeyOrderedAndFiltered) {
  RowTable table(TestSchema());
  for (int64_t i : {3, 1, 2}) {
    ASSERT_TRUE(table.InsertCommitted(MakeRow(i, i * 10), 5).ok());
  }
  ASSERT_TRUE(table.DeleteCommitted(KeyOf(2), 7).ok());
  std::vector<int64_t> seen;
  table.ScanVisible(10, [&](const Row& r) { seen.push_back(r[0].AsInt64()); });
  EXPECT_EQ(seen, (std::vector<int64_t>{1, 3}));
  seen.clear();
  table.ScanVisible(6, [&](const Row& r) { seen.push_back(r[0].AsInt64()); });
  EXPECT_EQ(seen, (std::vector<int64_t>{1, 2, 3}));
}

TEST(RowTableTest, KeylessTableAppends) {
  Schema schema = SchemaBuilder().AddInt64("x").Build();
  RowTable table(schema);
  ASSERT_TRUE(table.InsertCommitted(Row{Value::Int64(1)}, 1).ok());
  ASSERT_TRUE(table.InsertCommitted(Row{Value::Int64(1)}, 2).ok());
  EXPECT_EQ(table.num_keys(), 2u);
}

TEST(RowTableTest, LastWriteTs) {
  RowTable table(TestSchema());
  EXPECT_EQ(table.LastWriteTs(KeyOf(1)), 0u);
  ASSERT_TRUE(table.InsertCommitted(MakeRow(1, 1), 5).ok());
  EXPECT_EQ(table.LastWriteTs(KeyOf(1)), 5u);
  ASSERT_TRUE(table.DeleteCommitted(KeyOf(1), 9).ok());
  EXPECT_EQ(table.LastWriteTs(KeyOf(1)), 9u);
}

TEST(DualTableTest, MirrorsStayConsistent) {
  DualTable table(TestSchema());
  for (int64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(table.InsertCommitted(MakeRow(i, i), 10).ok());
  }
  for (int64_t i = 0; i < 50; i += 5) {
    ASSERT_TRUE(table.DeleteCommitted(KeyOf(i), 20).ok());
  }
  for (int64_t i = 1; i < 50; i += 5) {
    ASSERT_TRUE(table.UpdateCommitted(KeyOf(i), MakeRow(i, i + 100), 30).ok());
  }
  for (Timestamp ts : {10u, 20u, 25u, 30u, 40u}) {
    ExpectMirrorsAgree(&table, ts);
  }
}

TEST(DualTableTest, MirrorsConsistentAcrossMerge) {
  DualTable table(TestSchema());
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(table.InsertCommitted(MakeRow(i, i), 10).ok());
  }
  ASSERT_TRUE(table.DeleteCommitted(KeyOf(5), 20).ok());
  table.MergeDelta(50, 50);
  for (int64_t i = 100; i < 120; ++i) {
    ASSERT_TRUE(table.InsertCommitted(MakeRow(i, i), 60).ok());
  }
  ExpectMirrorsAgree(&table, 70);
}

TEST(DualTableTest, PointReadsServedByRowSide) {
  DualTable table(TestSchema());
  ASSERT_TRUE(table.InsertCommitted(MakeRow(7, 70), 5).ok());
  Row out;
  ASSERT_TRUE(table.Lookup(KeyOf(7), 5, &out));
  EXPECT_EQ(out[1].AsInt64(), 70);
  EXPECT_EQ(table.LastWriteTs(KeyOf(7)), 5u);
}

TEST(TableFacadeTest, FormatsDispatchCorrectly) {
  for (TableFormat format :
       {TableFormat::kRow, TableFormat::kColumn, TableFormat::kDual}) {
    Table table("t", TestSchema(), format);
    EXPECT_EQ(table.format(), format);
    ASSERT_TRUE(table.InsertCommitted(MakeRow(1, 10), 5).ok());
    ASSERT_TRUE(table.UpdateCommitted(KeyOf(1), MakeRow(1, 20), 6).ok());
    Row out;
    ASSERT_TRUE(table.Lookup(KeyOf(1), 6, &out));
    EXPECT_EQ(out[1].AsInt64(), 20);
    EXPECT_EQ(table.CountVisible(6), 1u);
    ASSERT_TRUE(table.DeleteCommitted(KeyOf(1), 7).ok());
    EXPECT_EQ(table.CountVisible(7), 0u);
    EXPECT_EQ(table.Mergeable(), format != TableFormat::kRow);
    EXPECT_EQ(table.GetColumnSnapshot(7).has_value(),
              format != TableFormat::kRow);
  }
}

TEST(TableFacadeTest, ScanVisibleCoversMainAndDelta) {
  Table table("t", TestSchema(), TableFormat::kColumn);
  std::vector<Row> initial;
  for (int64_t i = 0; i < 10; ++i) initial.push_back(MakeRow(i, i));
  ASSERT_TRUE(table.BulkLoadToMain(initial, 1).ok());
  ASSERT_TRUE(table.InsertCommitted(MakeRow(100, 100), 5).ok());
  EXPECT_EQ(table.CountVisible(5), 11u);
  EXPECT_EQ(table.CountVisible(1), 10u);
}

TEST(RowTableTest, ScanRangeOrderedAndBounded) {
  RowTable table(TestSchema());
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(table.InsertCommitted(MakeRow(i, i), 5).ok());
  }
  ASSERT_TRUE(table.DeleteCommitted(KeyOf(42), 7).ok());
  std::vector<int64_t> seen;
  size_t n = table.ScanRange(KeyOf(40), 5, 10,
                             [&](const Row& r) { seen.push_back(r[0].AsInt64()); });
  EXPECT_EQ(n, 5u);
  EXPECT_EQ(seen, (std::vector<int64_t>{40, 41, 43, 44, 45}));  // 42 deleted
  // At the pre-delete snapshot, 42 reappears.
  seen.clear();
  table.ScanRange(KeyOf(40), 3, 6,
                  [&](const Row& r) { seen.push_back(r[0].AsInt64()); });
  EXPECT_EQ(seen, (std::vector<int64_t>{40, 41, 42}));
}

TEST(TableFacadeTest, ScanRangeAllFormatsAgree) {
  for (TableFormat format :
       {TableFormat::kRow, TableFormat::kColumn, TableFormat::kDual}) {
    Table table("t", TestSchema(), format);
    for (int64_t i = 0; i < 50; ++i) {
      ASSERT_TRUE(table.InsertCommitted(MakeRow(i, i * 2), 5).ok());
    }
    std::vector<int64_t> seen;
    size_t n = table.ScanRange(KeyOf(10), 4, 10, [&](const Row& r) {
      seen.push_back(r[0].AsInt64());
    });
    EXPECT_EQ(n, 4u) << TableFormatToString(format);
    EXPECT_EQ(seen, (std::vector<int64_t>{10, 11, 12, 13}))
        << TableFormatToString(format);
  }
}

TEST(TableFacadeTest, DualBulkLoadFillsBothMirrors) {
  Table table("t", TestSchema(), TableFormat::kDual);
  std::vector<Row> rows;
  for (int64_t i = 0; i < 10; ++i) rows.push_back(MakeRow(i, i));
  ASSERT_TRUE(table.BulkLoadToMain(rows, 1).ok());
  Row out;
  ASSERT_TRUE(table.Lookup(KeyOf(3), 1, &out));  // row side
  EXPECT_EQ(table.column_table()->main_size(), 10u);
}

}  // namespace
}  // namespace oltap
