#include <gtest/gtest.h>

#include "common/rng.h"
#include "numa/numa_scan.h"
#include "numa/placement.h"
#include "numa/topology.h"

namespace oltap {
namespace {

TEST(NumaTopologyTest, AccessCosts) {
  NumaTopology topo(4, 2.5);
  EXPECT_EQ(topo.num_nodes(), 4);
  EXPECT_DOUBLE_EQ(topo.AccessCost(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(topo.AccessCost(0, 1), 2.5);
  EXPECT_EQ(topo.ExtraFullPasses(), 1);
  EXPECT_DOUBLE_EQ(topo.FractionalPass(), 0.5);
}

TEST(NumaTopologyTest, UnitPenaltyMeansNoExtraWork) {
  NumaTopology topo(2, 1.0);
  EXPECT_EQ(topo.ExtraFullPasses(), 0);
  EXPECT_DOUBLE_EQ(topo.FractionalPass(), 0.0);
}

TEST(NumaPlacementTest, PartitionedSpreadsFragments) {
  NumaTopology topo(4, 2.0);
  Rng rng(1);
  NumaPartitionedTable table(&topo, 16, 100,
                             PlacementPolicy::kPartitioned, &rng);
  ASSERT_EQ(table.num_fragments(), 16u);
  std::vector<int> per_node(4, 0);
  for (size_t f = 0; f < 16; ++f) {
    per_node[table.fragment(f).home_node]++;
  }
  for (int n : per_node) EXPECT_EQ(n, 4);
  EXPECT_EQ(table.total_rows(), 1600u);
}

TEST(NumaPlacementTest, SingleNodePinsEverything) {
  NumaTopology topo(4, 2.0);
  Rng rng(2);
  NumaPartitionedTable table(&topo, 8, 50, PlacementPolicy::kSingleNode,
                             &rng);
  for (size_t f = 0; f < 8; ++f) {
    EXPECT_EQ(table.fragment(f).home_node, 0);
  }
}

TEST(NumaPlacementTest, InterleavedStaysBalanced) {
  NumaTopology topo(4, 2.0);
  Rng rng(3);
  NumaPartitionedTable table(&topo, 16, 10, PlacementPolicy::kInterleaved,
                             &rng);
  std::vector<int> per_node(4, 0);
  for (size_t f = 0; f < 16; ++f) {
    per_node[table.fragment(f).home_node]++;
  }
  for (int n : per_node) EXPECT_EQ(n, 4);  // shuffled but still balanced
}

class NumaScanCorrectnessTest
    : public ::testing::TestWithParam<std::tuple<PlacementPolicy, TaskRouting>> {};

TEST_P(NumaScanCorrectnessTest, SumIndependentOfPolicy) {
  auto [placement, routing] = GetParam();
  NumaTopology topo(4, 2.0);
  Rng rng(42);  // identical data regardless of policy, seed-fixed
  NumaPartitionedTable table(&topo, 12, 500, placement, &rng);

  // Reference sum computed directly.
  int64_t expected = 0;
  for (size_t f = 0; f < table.num_fragments(); ++f) {
    const auto& frag = table.fragment(f);
    for (size_t i = 0; i < frag.filter.size(); ++i) {
      if (frag.filter[i] < 500) expected += frag.value[i];
    }
  }
  NumaScanResult r = NumaParallelScan(table, 500, routing);
  EXPECT_EQ(r.sum, expected);
  EXPECT_EQ(r.local_fragments + r.remote_fragments, table.num_fragments());
}

INSTANTIATE_TEST_SUITE_P(
    Policies, NumaScanCorrectnessTest,
    ::testing::Combine(::testing::Values(PlacementPolicy::kPartitioned,
                                         PlacementPolicy::kInterleaved,
                                         PlacementPolicy::kSingleNode),
                       ::testing::Values(TaskRouting::kNumaLocal,
                                         TaskRouting::kWorkSteal)));

TEST(NumaScanTest, LocalRoutingNeverTouchesRemote) {
  NumaTopology topo(4, 2.0);
  Rng rng(5);
  NumaPartitionedTable table(&topo, 8, 100, PlacementPolicy::kPartitioned,
                             &rng);
  NumaScanResult r = NumaParallelScan(table, 1000, TaskRouting::kNumaLocal);
  EXPECT_EQ(r.remote_fragments, 0u);
  EXPECT_EQ(r.local_fragments, 8u);
}

TEST(NumaScanTest, WorkStealOnSingleNodePlacementPaysRemoteAccesses) {
  NumaTopology topo(4, 2.0);
  Rng rng(6);
  // Fragments large enough (several ms of scan work total) that all four
  // workers join before the shared queue drains.
  NumaPartitionedTable table(&topo, 8, 400000, PlacementPolicy::kSingleNode,
                             &rng);
  NumaScanResult r = NumaParallelScan(table, 1000, TaskRouting::kWorkSteal);
  EXPECT_EQ(r.local_fragments + r.remote_fragments, 8u);
  // With all data homed on node 0, every fragment a non-zero node scans is
  // remote by definition — the accounting must agree exactly. (Whether the
  // OS actually lets the other workers steal is scheduling-dependent on a
  // single-core host, so remote > 0 is not asserted.)
  ASSERT_EQ(r.fragments_per_node.size(), 4u);
  uint64_t stolen = r.fragments_per_node[1] + r.fragments_per_node[2] +
                    r.fragments_per_node[3];
  EXPECT_EQ(r.remote_fragments, stolen);
  EXPECT_EQ(r.local_fragments, r.fragments_per_node[0]);
}

}  // namespace
}  // namespace oltap
