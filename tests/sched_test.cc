#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/failpoint.h"
#include "sched/workload_manager.h"

namespace oltap {
namespace {

void BusyMicros(int64_t us) {
  auto end = std::chrono::steady_clock::now() + std::chrono::microseconds(us);
  while (std::chrono::steady_clock::now() < end) {
  }
}

TEST(WorkloadManagerTest, RunsSubmittedWork) {
  WorkloadManager::Options opts;
  opts.num_workers = 4;
  WorkloadManager wm(opts);
  std::atomic<int> ran{0};
  std::vector<std::future<Status>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(wm.Submit(
        i % 2 == 0 ? QueryClass::kOltp : QueryClass::kOlap,
        [&ran] { ran.fetch_add(1); }));
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  EXPECT_EQ(ran.load(), 100);
  EXPECT_EQ(wm.StatsFor(QueryClass::kOltp).count, 50u);
  EXPECT_EQ(wm.StatsFor(QueryClass::kOlap).count, 50u);
}

TEST(WorkloadManagerTest, DrainWaitsForCompletion) {
  WorkloadManager::Options opts;
  opts.num_workers = 2;
  WorkloadManager wm(opts);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    wm.Submit(QueryClass::kOltp, [&done] {
      BusyMicros(500);
      done.fetch_add(1);
    });
  }
  wm.Drain();
  EXPECT_EQ(done.load(), 20);
}

TEST(WorkloadManagerTest, OltpPriorityJumpsQueue) {
  // One worker, a pile of slow OLAP queued first, then OLTP: under
  // priority scheduling the OLTP tasks run before the remaining OLAP.
  WorkloadManager::Options opts;
  opts.num_workers = 1;
  opts.policy = SchedulingPolicy::kOltpPriority;
  WorkloadManager wm(opts);
  std::vector<int> order;
  std::mutex order_mu;
  std::vector<std::future<Status>> futures;
  for (int i = 0; i < 5; ++i) {
    futures.push_back(wm.Submit(QueryClass::kOlap, [&order, &order_mu, i] {
      BusyMicros(2000);
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(100 + i);  // OLAP marker
    }));
  }
  // Give the worker a moment to start the first OLAP task.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  for (int i = 0; i < 3; ++i) {
    futures.push_back(wm.Submit(QueryClass::kOltp, [&order, &order_mu, i] {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(i);  // OLTP marker
    }));
  }
  for (auto& f : futures) f.get();
  // All three OLTP tasks must appear before the last OLAP task.
  int last_oltp = -1, last_olap = -1;
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] < 100) last_oltp = static_cast<int>(i);
    if (order[i] >= 100) last_olap = static_cast<int>(i);
  }
  EXPECT_LT(last_oltp, last_olap);
}

TEST(WorkloadManagerTest, ReservedWorkersIsolateOltp) {
  // Flood OLAP; OLTP latency must stay low because one worker only ever
  // serves OLTP.
  WorkloadManager::Options opts;
  opts.num_workers = 2;
  opts.policy = SchedulingPolicy::kReservedWorkers;
  opts.reserved_oltp_workers = 1;
  WorkloadManager wm(opts);
  std::vector<std::future<Status>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(
        wm.Submit(QueryClass::kOlap, [] { BusyMicros(1000); }));
  }
  for (int i = 0; i < 50; ++i) {
    futures.push_back(wm.Submit(QueryClass::kOltp, [] { BusyMicros(50); }));
  }
  for (auto& f : futures) f.get();
  LatencySummary oltp = wm.StatsFor(QueryClass::kOltp);
  LatencySummary olap = wm.StatsFor(QueryClass::kOlap);
  EXPECT_EQ(oltp.count, 50u);
  // The OLAP queue is ~50ms deep on its single worker; OLTP drains its own
  // worker at ~50µs each. Mean OLTP latency must be far below mean OLAP.
  EXPECT_LT(oltp.mean_us, olap.mean_us / 2);
}

TEST(WorkloadManagerTest, FifoLetsOlapStarveOltp) {
  // The baseline failure mode: under FIFO with slow OLAP ahead in the
  // queue, OLTP latency inflates to OLAP scale.
  WorkloadManager::Options opts;
  opts.num_workers = 1;
  opts.policy = SchedulingPolicy::kFifo;
  WorkloadManager wm(opts);
  std::vector<std::future<Status>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(
        wm.Submit(QueryClass::kOlap, [] { BusyMicros(2000); }));
  }
  for (int i = 0; i < 5; ++i) {
    futures.push_back(wm.Submit(QueryClass::kOltp, [] { BusyMicros(10); }));
  }
  for (auto& f : futures) f.get();
  LatencySummary oltp = wm.StatsFor(QueryClass::kOltp);
  // Every OLTP task waited behind ~20 OLAP tasks of 2ms each.
  EXPECT_GT(oltp.mean_us, 10000.0);
}

TEST(WorkloadManagerTest, AdmissionControlRejectsOlapFlood) {
  WorkloadManager::Options opts;
  opts.num_workers = 1;
  opts.olap_admission_limit = 4;
  WorkloadManager wm(opts);
  std::vector<std::future<Status>> futures;
  for (int i = 0; i < 30; ++i) {
    futures.push_back(
        wm.Submit(QueryClass::kOlap, [] { BusyMicros(1000); }));
  }
  size_t rejected = 0;
  for (auto& f : futures) {
    if (f.get().IsResourceExhausted()) ++rejected;
  }
  EXPECT_GT(rejected, 0u);
  EXPECT_EQ(wm.rejected_olap(), rejected);
  EXPECT_EQ(wm.shed(), rejected);
  EXPECT_EQ(wm.admitted() + rejected, 30u);
  // OLTP is never rejected.
  auto f = wm.Submit(QueryClass::kOltp, [] {});
  EXPECT_TRUE(f.get().ok());
}

TEST(WorkloadManagerTest, SubmitAfterShutdownReturnsUnavailable) {
  WorkloadManager::Options opts;
  opts.num_workers = 2;
  WorkloadManager wm(opts);
  std::atomic<int> ran{0};
  auto before = wm.Submit(QueryClass::kOltp, [&ran] { ran.fetch_add(1); });
  EXPECT_TRUE(before.get().ok());
  wm.Shutdown();

  auto after = wm.Submit(QueryClass::kOltp, [&ran] { ran.fetch_add(1); });
  Status st = after.get();  // resolves immediately, no hang
  EXPECT_TRUE(st.IsUnavailable()) << st.ToString();
  auto sub = wm.SubmitCancellable(
      QueryClass::kOlap, /*deadline_us=*/0,
      [&ran](const CancellationToken&) {
        ran.fetch_add(1);
        return Status::OK();
      });
  EXPECT_TRUE(sub.done.get().IsUnavailable());
  EXPECT_EQ(ran.load(), 1);
  wm.Shutdown();  // idempotent
}

TEST(WorkloadManagerTest, ShutdownFailsQueuedTasksWithoutRunningThem) {
  WorkloadManager::Options opts;
  opts.num_workers = 1;
  WorkloadManager wm(opts);
  // Park the only worker so subsequent tasks stay queued.
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::atomic<bool> blocker_running{false};
  auto blocker = wm.Submit(QueryClass::kOltp, [&blocker_running, opened] {
    blocker_running.store(true);
    opened.wait();
  });
  while (!blocker_running.load()) std::this_thread::yield();
  std::atomic<int> ran{0};
  std::vector<std::future<Status>> queued;
  for (int i = 0; i < 8; ++i) {
    queued.push_back(
        wm.Submit(QueryClass::kOlap, [&ran] { ran.fetch_add(1); }));
  }
  gate.set_value();
  wm.Shutdown();
  EXPECT_TRUE(blocker.get().ok());
  // Every task the workers never reached resolves kUnavailable; none of
  // the futures hang on a dead pool.
  int orphaned = 0;
  for (auto& f : queued) {
    if (f.get().IsUnavailable()) ++orphaned;
  }
  EXPECT_EQ(orphaned + ran.load(), 8);
}

TEST(WorkloadManagerTest, DeadlineExpiredInQueueNeverRuns) {
  ManualClock clock;
  WorkloadManager::Options opts;
  opts.num_workers = 1;
  opts.clock = &clock;
  WorkloadManager wm(opts);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  auto blocker =
      wm.Submit(QueryClass::kOlap, [opened] { opened.wait(); });
  std::atomic<bool> ran{false};
  auto sub = wm.SubmitCancellable(QueryClass::kOlap, /*deadline_us=*/100,
                                  [&ran](const CancellationToken&) {
                                    ran.store(true);
                                    return Status::OK();
                                  });
  // The deadline passes while the query is still queued behind the
  // blocker; dispatch must resolve it without executing the work.
  clock.AdvanceMicros(500);
  gate.set_value();
  Status st = sub.done.get();
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.ToString();
  EXPECT_FALSE(ran.load());
  EXPECT_EQ(wm.expired_in_queue(), 1u);
  wm.Drain();  // expired work must not wedge the drain
  EXPECT_TRUE(blocker.get().ok());
}

TEST(WorkloadManagerTest, CooperativeCancellationUnwindsRunningQuery) {
  WorkloadManager::Options opts;
  opts.num_workers = 1;
  WorkloadManager wm(opts);
  std::atomic<bool> started{false};
  auto sub = wm.SubmitCancellable(
      QueryClass::kOlap, /*deadline_us=*/0,
      [&started](const CancellationToken& token) {
        started.store(true);
        // A long scan polling its token at batch boundaries.
        while (true) {
          Status st = token.Check();
          if (!st.ok()) return st;
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
      });
  while (!started.load()) std::this_thread::yield();
  sub.token->Cancel();
  Status st = sub.done.get();
  EXPECT_TRUE(st.IsAborted()) << st.ToString();
}

TEST(WorkloadManagerTest, DeadlineInterruptsRunningQuery) {
  ManualClock clock;
  WorkloadManager::Options opts;
  opts.num_workers = 1;
  opts.clock = &clock;
  WorkloadManager wm(opts);
  std::atomic<bool> started{false};
  auto sub = wm.SubmitCancellable(
      QueryClass::kOlap, /*deadline_us=*/1000,
      [&started](const CancellationToken& token) {
        started.store(true);
        while (true) {
          Status st = token.Check();
          if (!st.ok()) return st;
          std::this_thread::yield();
        }
      });
  while (!started.load()) std::this_thread::yield();
  clock.AdvanceMicros(2000);
  Status st = sub.done.get();
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
}

TEST(WorkloadManagerTest, AdmissionFailpointRejectsWithInjectedStatus) {
  WorkloadManager::Options opts;
  opts.num_workers = 1;
  WorkloadManager wm(opts);
  FailpointConfig cfg;
  cfg.status = Status::FailedPrecondition("injected admission pressure");
  ScopedFailpoint armed("wm.admit.reject", cfg);
  std::atomic<bool> ran{false};
  auto rejected = wm.Submit(QueryClass::kOltp, [&ran] { ran.store(true); });
  Status st = rejected.get();
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition) << st.ToString();
  EXPECT_FALSE(ran.load());
  // max_fires=1: the next submission is admitted normally.
  auto ok = wm.Submit(QueryClass::kOltp, [&ran] { ran.store(true); });
  EXPECT_TRUE(ok.get().ok());
  EXPECT_TRUE(ran.load());
}

TEST(WorkloadManagerTest, StatsPercentilesOrdered) {
  WorkloadManager::Options opts;
  opts.num_workers = 4;
  WorkloadManager wm(opts);
  std::vector<std::future<Status>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(
        wm.Submit(QueryClass::kOltp, [i] { BusyMicros(10 + i % 50); }));
  }
  for (auto& f : futures) f.get();
  LatencySummary s = wm.StatsFor(QueryClass::kOltp);
  EXPECT_EQ(s.count, 200u);
  EXPECT_LE(s.p50_us, s.p95_us);
  EXPECT_LE(s.p95_us, s.p99_us);
  EXPECT_LE(s.p99_us, s.p999_us);
  EXPECT_LE(s.p999_us, s.max_us);
  EXPECT_GT(s.mean_us, 0.0);
}


// A worker-blocking gate: holds every worker busy until released, so
// admission decisions are driven purely by queue depth.
struct Gate {
  std::promise<void> release;
  std::shared_future<void> released{release.get_future().share()};
  void Open() { release.set_value(); }
};

TEST(WorkloadManagerTest, OltpQueueBoundIsABackstop) {
  WorkloadManager::Options opts;
  opts.num_workers = 1;
  opts.oltp_admission_limit = 2;
  WorkloadManager wm(opts);
  Gate gate;
  auto blocker = wm.Submit(QueryClass::kOltp,
                           [f = gate.released] { f.wait(); });
  // Worker busy: queue up to the bound, then shed.
  std::vector<std::future<Status>> queued;
  while (true) {
    auto f = wm.Submit(QueryClass::kOltp, [] {});
    if (f.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
      Status st = f.get();
      ASSERT_TRUE(st.IsResourceExhausted()) << st.ToString();
      break;
    }
    queued.push_back(std::move(f));
    ASSERT_LE(queued.size(), 64u) << "admission bound never enforced";
  }
  EXPECT_EQ(wm.shed(), 1u);
  EXPECT_EQ(wm.rejected_olap(), 0u);  // OLTP sheds are not OLAP rejections
  gate.Open();
  for (auto& f : queued) EXPECT_TRUE(f.get().ok());
  EXPECT_TRUE(blocker.get().ok());
}

TEST(WorkloadManagerTest, MemoryBudgetShedsOlapButNeverOltp) {
  WorkloadManager::Options opts;
  opts.num_workers = 1;
  opts.memory_budget_bytes = 1000;
  WorkloadManager wm(opts);
  Gate gate;
  auto blocker = wm.Submit(QueryClass::kOltp,
                           [f = gate.released] { f.wait(); });

  WorkloadManager::QuerySpec big;
  big.est_memory_bytes = 600;
  auto noop = [](const CancellationToken&,
                 const WorkloadManager::QueryGrant&) { return Status::OK(); };

  auto first = wm.SubmitBudgeted(QueryClass::kOlap, big, noop);
  EXPECT_EQ(wm.memory_in_use(), 600u);
  // Second OLAP query would overshoot the budget → shed.
  auto second = wm.SubmitBudgeted(QueryClass::kOlap, big, noop);
  Status st = second.done.get();
  EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
  // OLTP is exempt from the memory budget — it is the protected class.
  auto oltp = wm.SubmitBudgeted(QueryClass::kOltp, big, noop);

  gate.Open();
  EXPECT_TRUE(first.done.get().ok());
  EXPECT_TRUE(oltp.done.get().ok());
  EXPECT_TRUE(blocker.get().ok());
  wm.Drain();
  EXPECT_EQ(wm.memory_in_use(), 0u);  // released on completion
  EXPECT_EQ(wm.shed(), 1u);
}

TEST(WorkloadManagerTest, OlapDegradesUnderQueuePressure) {
  WorkloadManager::Options opts;
  opts.num_workers = 1;
  opts.olap_degrade_threshold = 2;
  opts.degraded_batch_rows = 128;
  WorkloadManager wm(opts);
  Gate gate;
  auto blocker = wm.Submit(QueryClass::kOltp,
                           [f = gate.released] { f.wait(); });

  std::atomic<int> degraded_runs{0};
  std::atomic<int> full_runs{0};
  auto work = [&](const CancellationToken&,
                  const WorkloadManager::QueryGrant& grant) {
    if (grant.degraded) {
      EXPECT_EQ(grant.batch_budget_rows, 128u);
      degraded_runs.fetch_add(1);
    } else {
      EXPECT_EQ(grant.batch_budget_rows, 0u);
      full_runs.fetch_add(1);
    }
    return Status::OK();
  };
  std::vector<WorkloadManager::Submission> subs;
  for (int i = 0; i < 4; ++i) {
    subs.push_back(wm.SubmitBudgeted(QueryClass::kOlap,
                                     WorkloadManager::QuerySpec{}, work));
  }
  gate.Open();
  for (auto& s : subs) EXPECT_TRUE(s.done.get().ok());
  EXPECT_TRUE(blocker.get().ok());
  // Queue depths at admission were 0,1,2,3 → the last two degraded.
  EXPECT_EQ(full_runs.load(), 2);
  EXPECT_EQ(degraded_runs.load(), 2);
  EXPECT_EQ(wm.degraded_admissions(), 2u);
  EXPECT_EQ(wm.shed(), 0u);
}

}  // namespace
}  // namespace oltap
