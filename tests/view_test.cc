#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "obs/metrics.h"
#include "sql/session.h"
#include "storage/row.h"
#include "failpoint_fixture.h"
#include "txn/wal.h"
#include "view/view.h"
#include "workload/chbench.h"
#include "workload/driver.h"

namespace oltap {
namespace {

QueryResult Exec(Database* db, const std::string& sql) {
  auto r = db->Execute(sql);
  EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  return r.ok() ? *r : QueryResult{};
}

// Order-independent rendering of a result set.
std::vector<std::string> Canon(const QueryResult& r) {
  std::vector<std::string> out;
  out.reserve(r.rows.size());
  for (const Row& row : r.rows) out.push_back(RowToString(row));
  std::sort(out.begin(), out.end());
  return out;
}

// The routed and unrouted executions of the same SQL must agree cell for
// cell (and on output column names).
void ExpectRoutedEquals(Database* db, const std::string& sql) {
  Exec(db, "SET view_routing = off");
  QueryResult base = Exec(db, sql);
  Exec(db, "SET view_routing = on");
  QueryResult routed = Exec(db, sql);
  EXPECT_EQ(base.columns, routed.columns) << sql;
  EXPECT_EQ(Canon(base), Canon(routed)) << sql;
}

class ViewFailpointTest : public FailpointTest {};

bool ExplainRouted(Database* db, const std::string& sql) {
  QueryResult r = Exec(db, "EXPLAIN " + sql);
  for (const Row& row : r.rows) {
    for (const Value& v : row) {
      if (!v.is_null() && v.type() == ValueType::kString &&
          v.AsString().find("routed via materialized view") !=
              std::string::npos) {
        return true;
      }
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Validation / DDL surface.

TEST(ViewTest, CreateValidation) {
  Database db;
  Exec(&db, "CREATE TABLE t (a INT NOT NULL, g INT, v INT, PRIMARY KEY (a))");
  Exec(&db, "CREATE TABLE u (b INT NOT NULL, w INT, PRIMARY KEY (b))");

  // Unknown base table.
  EXPECT_FALSE(
      db.Execute("CREATE MATERIALIZED VIEW v1 AS SELECT x FROM nosuch").ok());
  // ORDER BY / LIMIT / DISTINCT in the definition.
  EXPECT_FALSE(db.Execute("CREATE MATERIALIZED VIEW v1 AS "
                          "SELECT a, v FROM t ORDER BY a")
                   .ok());
  EXPECT_FALSE(db.Execute("CREATE MATERIALIZED VIEW v1 AS "
                          "SELECT a, v FROM t LIMIT 3")
                   .ok());
  EXPECT_FALSE(db.Execute("CREATE MATERIALIZED VIEW v1 AS "
                          "SELECT DISTINCT g FROM t")
                   .ok());
  // Aggregate view without GROUP BY.
  EXPECT_FALSE(db.Execute("CREATE MATERIALIZED VIEW v1 AS "
                          "SELECT SUM(v) AS s FROM t")
                   .ok());
  // Join view whose select list misses a base primary key (u.b).
  EXPECT_FALSE(db.Execute("CREATE MATERIALIZED VIEW v1 AS "
                          "SELECT t.a, t.v FROM t JOIN u ON t.g = u.b")
                   .ok());
  // Disconnected join (no edge between t and u).
  EXPECT_FALSE(db.Execute("CREATE MATERIALIZED VIEW v1 AS "
                          "SELECT t.a, u.b FROM t, u WHERE t.a > 0")
                   .ok());

  Exec(&db,
       "CREATE MATERIALIZED VIEW v1 AS "
       "SELECT t.a, u.b, t.v, u.w FROM t JOIN u ON t.g = u.b");
  // Duplicate name.
  EXPECT_FALSE(db.Execute("CREATE MATERIALIZED VIEW v1 AS "
                          "SELECT g FROM t GROUP BY g")
                   .ok());
  // Views over views.
  EXPECT_FALSE(db.Execute("CREATE MATERIALIZED VIEW v2 AS "
                          "SELECT a FROM v1 GROUP BY a")
                   .ok());
  // Direct DML against a view.
  EXPECT_FALSE(db.Execute("INSERT INTO v1 VALUES (1, 1, 1, 1)").ok());
  EXPECT_FALSE(db.Execute("UPDATE v1 SET v = 0 WHERE a = 1").ok());
  EXPECT_FALSE(db.Execute("DELETE FROM v1 WHERE a = 1").ok());
  // View DDL inside an explicit transaction.
  std::unique_ptr<Transaction> txn = db.txn_manager()->Begin();
  EXPECT_FALSE(
      db.ExecuteIn(txn.get(), "CREATE MATERIALIZED VIEW v3 AS SELECT a FROM t")
          .ok());
  db.txn_manager()->Abort(txn.get());
  // REFRESH of an unknown view.
  EXPECT_FALSE(db.Execute("REFRESH MATERIALIZED VIEW nosuch").ok());

  EXPECT_TRUE(db.view_manager()->IsView("v1"));
  EXPECT_EQ(db.view_manager()->num_views(), 1u);
}

// ---------------------------------------------------------------------------
// Synchronous incremental maintenance.

TEST(ViewTest, JoinViewSyncMaintenance) {
  Database db;
  Exec(&db, "CREATE TABLE t (a INT NOT NULL, j INT, v INT, PRIMARY KEY (a))");
  Exec(&db, "CREATE TABLE u (b INT NOT NULL, w INT, PRIMARY KEY (b))");
  Exec(&db,
       "CREATE MATERIALIZED VIEW tv SYNC AS "
       "SELECT t.a, u.b, t.v, u.w FROM t JOIN u ON t.j = u.b "
       "WHERE t.v > 0");

  const std::string view_q = "SELECT a, b, v, w FROM tv";
  const std::string def_q =
      "SELECT t.a, u.b, t.v, u.w FROM t JOIN u ON t.j = u.b WHERE t.v > 0";
  auto check = [&] {
    Exec(&db, "SET view_routing = off");
    EXPECT_EQ(Canon(Exec(&db, view_q)), Canon(Exec(&db, def_q)));
    Exec(&db, "SET view_routing = on");
  };

  Exec(&db, "INSERT INTO u VALUES (10, 100), (20, 200), (30, 300)");
  check();
  Exec(&db, "INSERT INTO t VALUES (1, 10, 5), (2, 20, 7), (3, 10, -1)");
  check();  // a=3 filtered by the view predicate
  // NULL join key never matches (null-rejecting equality).
  Exec(&db, "INSERT INTO t VALUES (4, NULL, 9)");
  check();
  // Update that moves a row across the join (j 10 -> 20) and across the
  // local predicate (v 5 -> -5).
  Exec(&db, "UPDATE t SET j = 20 WHERE a = 1");
  check();
  Exec(&db, "UPDATE t SET v = -5 WHERE a = 2");
  check();
  Exec(&db, "UPDATE t SET v = 6 WHERE a = 2");
  check();
  // Delete on either side of the join.
  Exec(&db, "DELETE FROM t WHERE a = 1");
  check();
  Exec(&db, "DELETE FROM u WHERE b = 20");
  check();
  // Re-insert a previously deleted key (positional delete then reuse).
  Exec(&db, "INSERT INTO t VALUES (1, 30, 11)");
  check();
  // Delete the whole probe side.
  Exec(&db, "DELETE FROM u WHERE b > 0");
  check();
  EXPECT_TRUE(Exec(&db, view_q).rows.empty());
}

TEST(ViewTest, AggViewSyncMaintenance) {
  Database db;
  Exec(&db,
       "CREATE TABLE m (k INT NOT NULL, g INT, v INT, PRIMARY KEY (k))");
  Exec(&db,
       "CREATE MATERIALIZED VIEW magg SYNC AS "
       "SELECT g, COUNT(*) AS n, COUNT(v) AS nv, SUM(v) AS sv, "
       "AVG(v) AS av, MIN(v) AS mn, MAX(v) AS mx FROM m GROUP BY g");

  const std::string view_q = "SELECT g, n, nv, sv, av, mn, mx FROM magg";
  const std::string def_q =
      "SELECT g, COUNT(*) AS n, COUNT(v) AS nv, SUM(v) AS sv, "
      "AVG(v) AS av, MIN(v) AS mn, MAX(v) AS mx FROM m GROUP BY g";
  auto check = [&] {
    Exec(&db, "SET view_routing = off");
    EXPECT_EQ(Canon(Exec(&db, view_q)), Canon(Exec(&db, def_q)));
    Exec(&db, "SET view_routing = on");
  };

  Exec(&db, "INSERT INTO m VALUES (1, 1, 10), (2, 1, 20), (3, 2, 30)");
  check();
  Exec(&db, "INSERT INTO m VALUES (4, 1, NULL), (5, 3, 7)");
  check();  // NULL v: counted by n, not by nv/sv
  Exec(&db, "UPDATE m SET v = 25 WHERE k = 2");
  check();
  // Delete the group max (forces recompute) and the group min.
  Exec(&db, "DELETE FROM m WHERE k = 2");
  check();
  Exec(&db, "DELETE FROM m WHERE k = 1");
  check();
  // Group vanishes entirely.
  Exec(&db, "DELETE FROM m WHERE k = 3");
  check();
  // Group moves: update the group key.
  Exec(&db, "INSERT INTO m VALUES (6, 4, 1), (7, 4, 2)");
  Exec(&db, "UPDATE m SET g = 5 WHERE k = 6");
  check();
  // Row whose every aggregate input is NULL, then its deletion.
  Exec(&db, "INSERT INTO m VALUES (8, 6, NULL)");
  check();
  Exec(&db, "DELETE FROM m WHERE k = 8");
  check();
}

TEST(ViewTest, MinMaxDeleteRecomputes) {
  Database db;
  Exec(&db, "CREATE TABLE r (k INT NOT NULL, g INT, v INT, PRIMARY KEY (k))");
  Exec(&db,
       "CREATE MATERIALIZED VIEW rmm SYNC AS "
       "SELECT g, MIN(v) AS mn, MAX(v) AS mx FROM r GROUP BY g");
  Exec(&db, "INSERT INTO r VALUES (1, 1, 5), (2, 1, 9), (3, 1, 1)");

  uint64_t recomputes_before =
      obs::MetricsRegistry::Default()->GetCounter("view.group_recomputes")
          ->Value();
  Exec(&db, "DELETE FROM r WHERE k = 2");  // deletes the max
  QueryResult q = Exec(&db, "SELECT g, mn, mx FROM rmm");
  ASSERT_EQ(q.rows.size(), 1u);
  EXPECT_EQ(q.rows[0][1].AsInt64(), 1);
  EXPECT_EQ(q.rows[0][2].AsInt64(), 5);
  Exec(&db, "DELETE FROM r WHERE k = 3");  // deletes the min
  q = Exec(&db, "SELECT g, mn, mx FROM rmm");
  ASSERT_EQ(q.rows.size(), 1u);
  EXPECT_EQ(q.rows[0][1].AsInt64(), 5);
  EXPECT_EQ(q.rows[0][2].AsInt64(), 5);
  uint64_t recomputes_after =
      obs::MetricsRegistry::Default()->GetCounter("view.group_recomputes")
          ->Value();
  EXPECT_GT(recomputes_after, recomputes_before);
}

TEST(ViewTest, DoubleSumWithDeletes) {
  Database db;
  Exec(&db, "CREATE TABLE d (k INT NOT NULL, g INT, x DOUBLE, "
            "PRIMARY KEY (k))");
  Exec(&db,
       "CREATE MATERIALIZED VIEW dagg SYNC AS "
       "SELECT g, SUM(x) AS sx, COUNT(*) AS n FROM d GROUP BY g");
  Exec(&db, "INSERT INTO d VALUES (1, 1, 1.5), (2, 1, 2.25), (3, 1, 4.0)");
  // Double SUM is recomputed on delete, so the result is exact, not a
  // drifting subtraction.
  Exec(&db, "DELETE FROM d WHERE k = 2");
  QueryResult q = Exec(&db, "SELECT g, sx, n FROM dagg");
  ASSERT_EQ(q.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(q.rows[0][1].AsDouble(), 5.5);
  EXPECT_EQ(q.rows[0][2].AsInt64(), 2);
}

// ---------------------------------------------------------------------------
// Randomized equivalence: a seeded insert/update/delete stream against a
// deferred join view and a deferred aggregate view, compared to full
// recomputation at checkpoints. Covers positional deletes (delta-store
// tombstones), key reuse, group churn, and MIN/MAX delete paths.

TEST(ViewTest, RandomizedStreamEquivalence) {
  Database db;
  Exec(&db, "CREATE TABLE ft (a INT NOT NULL, j INT, g INT, v INT, "
            "PRIMARY KEY (a))");
  Exec(&db, "CREATE TABLE dt (b INT NOT NULL, w INT, PRIMARY KEY (b))");
  for (int b = 0; b < 8; ++b) {
    Exec(&db, "INSERT INTO dt VALUES (" + std::to_string(b) + ", " +
                  std::to_string(b * 10) + ")");
  }
  Exec(&db,
       "CREATE MATERIALIZED VIEW rj DEFERRED AS "
       "SELECT ft.a, dt.b, ft.v, dt.w FROM ft JOIN dt ON ft.j = dt.b");
  Exec(&db,
       "CREATE MATERIALIZED VIEW ra DEFERRED AS "
       "SELECT g, COUNT(*) AS n, SUM(v) AS sv, MIN(v) AS mn, MAX(v) AS mx "
       "FROM ft GROUP BY g");

  Rng stream(20260807);
  std::set<int64_t> live;
  int64_t next_key = 0;
  const int kOps = 400;
  for (int i = 0; i < kOps; ++i) {
    int pick = static_cast<int>(stream.UniformRange(0, 9));
    if (pick < 5 || live.empty()) {
      int64_t a = next_key++;
      // Key reuse: occasionally resurrect an old key.
      if (pick == 0 && !live.empty() && next_key > 4) {
        a = next_key - 2;
        if (live.count(a)) a = next_key++;
      }
      int64_t j = stream.UniformRange(0, 9);  // 8,9 dangle (no dt match)
      int64_t g = stream.UniformRange(0, 4);
      int64_t v = stream.UniformRange(-50, 50);
      std::string vs = (v == 0) ? "NULL" : std::to_string(v);
      if (db.Execute("INSERT INTO ft VALUES (" + std::to_string(a) + ", " +
                     std::to_string(j) + ", " + std::to_string(g) + ", " +
                     vs + ")")
              .ok()) {
        live.insert(a);
      }
    } else if (pick < 8) {
      auto it = live.begin();
      std::advance(it, stream.UniformRange(0, live.size() - 1));
      int64_t g = stream.UniformRange(0, 4);
      int64_t v = stream.UniformRange(-50, 50);
      Exec(&db, "UPDATE ft SET g = " + std::to_string(g) + ", v = " +
                    std::to_string(v) + " WHERE a = " + std::to_string(*it));
    } else {
      auto it = live.begin();
      std::advance(it, stream.UniformRange(0, live.size() - 1));
      Exec(&db, "DELETE FROM ft WHERE a = " + std::to_string(*it));
      live.erase(it);
    }

    if (i % 40 == 39 || i == kOps - 1) {
      EXPECT_GT(db.view_manager()->MaintainAll(), 0u);
      Exec(&db, "SET view_routing = off");
      EXPECT_EQ(
          Canon(Exec(&db, "SELECT a, b, v, w FROM rj")),
          Canon(Exec(&db, "SELECT ft.a, dt.b, ft.v, dt.w FROM ft "
                          "JOIN dt ON ft.j = dt.b")))
          << "op " << i;
      EXPECT_EQ(
          Canon(Exec(&db, "SELECT g, n, sv, mn, mx FROM ra")),
          Canon(Exec(&db, "SELECT g, COUNT(*) AS n, SUM(v) AS sv, "
                          "MIN(v) AS mn, MAX(v) AS mx FROM ft GROUP BY g")))
          << "op " << i;
      Exec(&db, "SET view_routing = on");
    }
  }
  // REFRESH produces the same contents the incremental path maintained.
  Exec(&db, "SET view_routing = off");
  std::vector<std::string> incr = Canon(Exec(&db, "SELECT g, n, sv, mn, mx "
                                                  "FROM ra"));
  Exec(&db, "REFRESH MATERIALIZED VIEW ra");
  EXPECT_EQ(incr, Canon(Exec(&db, "SELECT g, n, sv, mn, mx FROM ra")));
}

// ---------------------------------------------------------------------------
// Routing: shape matching, EXPLAIN surface, staleness gating, knobs.

TEST(ViewTest, RoutingAndStalenessGate) {
  Database db;
  Exec(&db, "CREATE TABLE f (k INT NOT NULL, g INT, v INT, PRIMARY KEY (k))");
  Exec(&db, "INSERT INTO f VALUES (1, 1, 10), (2, 1, 20), (3, 2, 30)");
  Exec(&db,
       "CREATE MATERIALIZED VIEW fa DEFERRED AS "
       "SELECT g, COUNT(*) AS n, SUM(v) AS sv FROM f GROUP BY g");

  const std::string q = "SELECT g, SUM(v) AS sv FROM f GROUP BY g";
  EXPECT_TRUE(ExplainRouted(&db, q));
  ExpectRoutedEquals(&db, q);
  ExpectRoutedEquals(&db, q + " ORDER BY sv DESC");
  ExpectRoutedEquals(&db,
                     "SELECT g, COUNT(*) AS n FROM f GROUP BY g ORDER BY g");
  // Residual predicate on the group column.
  ExpectRoutedEquals(&db, "SELECT g, SUM(v) AS sv FROM f WHERE g = 1 "
                          "GROUP BY g");

  // Shapes that must NOT route: different grain, non-group filter,
  // aggregate the view does not carry.
  EXPECT_FALSE(ExplainRouted(&db, "SELECT k, SUM(v) AS sv FROM f "
                                  "GROUP BY k"));
  EXPECT_FALSE(ExplainRouted(&db, "SELECT g, SUM(v) AS sv FROM f "
                                  "WHERE v > 10 GROUP BY g"));
  EXPECT_FALSE(ExplainRouted(&db, "SELECT g, MIN(v) AS mn FROM f "
                                  "GROUP BY g"));

  // A pending base change makes the deferred view stale; a zero session
  // staleness bound must keep the query off the view until maintenance.
  Exec(&db, "INSERT INTO f VALUES (4, 2, 40)");
  Exec(&db, "SET max_staleness = 0");
  EXPECT_FALSE(ExplainRouted(&db, q));
  QueryResult fresh = Exec(&db, q);  // answered from the base, sees k=4
  ASSERT_EQ(fresh.rows.size(), 2u);
  db.view_manager()->MaintainAll();
  EXPECT_TRUE(ExplainRouted(&db, q));
  ExpectRoutedEquals(&db, q);
  Exec(&db, "SET max_staleness = off");

  // The routing knob itself.
  Exec(&db, "SET view_routing = off");
  EXPECT_FALSE(ExplainRouted(&db, q));
  Exec(&db, "SET view_routing = on");
  EXPECT_TRUE(ExplainRouted(&db, q));

  uint64_t routed =
      obs::MetricsRegistry::Default()->GetCounter("view.routed")->Value();
  EXPECT_GT(routed, 0u);
}

TEST(ViewTest, JoinViewRouting) {
  Database db;
  Exec(&db, "CREATE TABLE o (oid INT NOT NULL, cid INT, amt INT, "
            "PRIMARY KEY (oid))");
  Exec(&db, "CREATE TABLE c (cid INT NOT NULL, seg INT, PRIMARY KEY (cid))");
  Exec(&db, "INSERT INTO c VALUES (1, 7), (2, 8)");
  Exec(&db, "INSERT INTO o VALUES (10, 1, 100), (11, 1, 50), (12, 2, 30)");
  Exec(&db,
       "CREATE MATERIALIZED VIEW oc SYNC AS "
       "SELECT o.oid, c.cid, o.amt, c.seg FROM o JOIN c ON o.cid = c.cid");

  // Plain join query routes onto the view (case A).
  ExpectRoutedEquals(&db, "SELECT o.oid, o.amt, c.seg FROM o "
                          "JOIN c ON o.cid = c.cid ORDER BY o.oid");
  // Aggregate over the join routes too (case B): the view stores the
  // join, the aggregation runs over the backing table.
  ExpectRoutedEquals(&db, "SELECT c.seg, SUM(o.amt) AS total FROM o "
                          "JOIN c ON o.cid = c.cid GROUP BY c.seg");
  EXPECT_TRUE(ExplainRouted(&db, "SELECT c.seg, SUM(o.amt) AS total FROM o "
                                 "JOIN c ON o.cid = c.cid GROUP BY c.seg"));
  // Residual filter the view does not carry is applied on top.
  ExpectRoutedEquals(&db, "SELECT o.oid, c.seg FROM o JOIN c "
                          "ON o.cid = c.cid WHERE o.amt > 40 ORDER BY o.oid");
  // Different join graph must not route.
  EXPECT_FALSE(ExplainRouted(&db, "SELECT o.oid, c.seg FROM o JOIN c "
                                  "ON o.amt = c.cid"));
}

// The headline acceptance: a CH-style aggregate over a wide fact table is
// at least 3x faster when routed onto the materialized view, at equal
// results.
TEST(ViewTest, RoutedSpeedupAtLeast3x) {
  Database db;
  Exec(&db, "CREATE TABLE fact (k INT NOT NULL, g INT, v INT, "
            "PRIMARY KEY (k))");
  // Bulk-load through the transaction API (SQL INSERT per row would
  // dominate the test's runtime).
  Table* fact = db.catalog()->GetTable("fact");
  constexpr int kRows = 40000, kGroups = 64;
  for (int base = 0; base < kRows; base += 2000) {
    std::unique_ptr<Transaction> txn = db.txn_manager()->Begin();
    for (int k = base; k < base + 2000; ++k) {
      Row row{Value::Int64(k), Value::Int64(k % kGroups),
              Value::Int64(k % 997)};
      ASSERT_TRUE(txn->Insert(fact, std::move(row)).ok());
    }
    ASSERT_TRUE(db.txn_manager()->Commit(txn.get()).ok());
  }
  Exec(&db,
       "CREATE MATERIALIZED VIEW factg SYNC AS "
       "SELECT g, COUNT(*) AS n, SUM(v) AS sv FROM fact GROUP BY g");
  Exec(&db, "ANALYZE");

  const std::string q =
      "SELECT g, SUM(v) AS sv FROM fact GROUP BY g ORDER BY g";
  ASSERT_TRUE(ExplainRouted(&db, q));

  auto time_best_us = [&](const char* knob) {
    Exec(&db, knob);
    int64_t best = INT64_MAX;
    for (int rep = 0; rep < 5; ++rep) {
      auto t0 = std::chrono::steady_clock::now();
      QueryResult r = Exec(&db, q);
      auto t1 = std::chrono::steady_clock::now();
      EXPECT_EQ(r.rows.size(), static_cast<size_t>(kGroups));
      best = std::min<int64_t>(
          best, std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
                    .count());
    }
    return best;
  };

  ExpectRoutedEquals(&db, q);
  int64_t base_us = time_best_us("SET view_routing = off");
  int64_t view_us = time_best_us("SET view_routing = on");
  EXPECT_GE(base_us, 3 * view_us)
      << "base " << base_us << "us vs routed " << view_us << "us";
}

// ---------------------------------------------------------------------------
// Recovery: views are rebuilt from the recovered bases; a maintenance
// round that fails mid-flight leaves no torn state.

TEST(ViewTest, RecoveryRebuildsViews) {
  Wal wal;
  std::string log;
  std::vector<std::string> expect_join, expect_agg;
  {
    Database db(&wal);
    Exec(&db, "CREATE TABLE t (a INT NOT NULL, j INT, v INT, "
              "PRIMARY KEY (a))");
    Exec(&db, "CREATE TABLE u (b INT NOT NULL, w INT, PRIMARY KEY (b))");
    Exec(&db,
         "CREATE MATERIALIZED VIEW jv SYNC AS "
         "SELECT t.a, u.b, t.v, u.w FROM t JOIN u ON t.j = u.b");
    Exec(&db,
         "CREATE MATERIALIZED VIEW av SYNC AS "
         "SELECT j, COUNT(*) AS n, SUM(v) AS sv FROM t GROUP BY j");
    Exec(&db, "INSERT INTO u VALUES (1, 10), (2, 20)");
    Exec(&db, "INSERT INTO t VALUES (1, 1, 5), (2, 2, 7), (3, 1, 9)");
    Exec(&db, "UPDATE t SET v = 6 WHERE a = 1");
    Exec(&db, "DELETE FROM t WHERE a = 2");
    Exec(&db, "SET view_routing = off");
    expect_join = Canon(Exec(&db, "SELECT a, b, v, w FROM jv"));
    expect_agg = Canon(Exec(&db, "SELECT j, n, sv FROM av"));
    log = wal.buffer();
  }

  // Recovery: recreate the schema (catalog DDL is not WAL-logged),
  // replay, and the views come back rebuilt, not torn.
  Database db2;
  Exec(&db2, "CREATE TABLE t (a INT NOT NULL, j INT, v INT, "
             "PRIMARY KEY (a))");
  Exec(&db2, "CREATE TABLE u (b INT NOT NULL, w INT, PRIMARY KEY (b))");
  Exec(&db2,
       "CREATE MATERIALIZED VIEW jv SYNC AS "
       "SELECT t.a, u.b, t.v, u.w FROM t JOIN u ON t.j = u.b");
  Exec(&db2,
       "CREATE MATERIALIZED VIEW av SYNC AS "
       "SELECT j, COUNT(*) AS n, SUM(v) AS sv FROM t GROUP BY j");
  ASSERT_TRUE(db2.RecoverFromWal(log).ok());
  Exec(&db2, "SET view_routing = off");
  EXPECT_EQ(Canon(Exec(&db2, "SELECT a, b, v, w FROM jv")), expect_join);
  EXPECT_EQ(Canon(Exec(&db2, "SELECT j, n, sv FROM av")), expect_agg);
  // And they keep maintaining after recovery.
  Exec(&db2, "INSERT INTO t VALUES (9, 2, 100)");
  EXPECT_EQ(Canon(Exec(&db2, "SELECT j, n, sv FROM av")),
            Canon(Exec(&db2, "SELECT j, COUNT(*) AS n, SUM(v) AS sv FROM t "
                             "GROUP BY j")));
}

TEST_F(ViewFailpointTest, CrashMidMaintenanceLeavesNoTornState) {
  Wal wal;
  Database db(&wal);
  Exec(&db, "CREATE TABLE t (a INT NOT NULL, g INT, v INT, PRIMARY KEY (a))");
  Exec(&db,
       "CREATE MATERIALIZED VIEW ag DEFERRED AS "
       "SELECT g, COUNT(*) AS n, SUM(v) AS sv, MAX(v) AS mx FROM t "
       "GROUP BY g");
  Exec(&db, "INSERT INTO t VALUES (1, 1, 10), (2, 1, 20)");
  db.view_manager()->MaintainAll();
  Exec(&db, "SET view_routing = off");
  std::vector<std::string> before =
      Canon(Exec(&db, "SELECT g, n, sv, mx FROM ag"));

  // New base change, then the maintenance transaction's WAL append fails:
  // the round must abort without touching the backing table or cursor.
  Exec(&db, "INSERT INTO t VALUES (3, 1, 30), (4, 2, 5)");
  {
    ScopedFailpoint fp("wal.append.error", FailpointConfig{});
    EXPECT_FALSE(db.view_manager()->Maintain("ag").ok());
  }
  EXPECT_EQ(Canon(Exec(&db, "SELECT g, n, sv, mx FROM ag")), before)
      << "failed maintenance must not leave partial deltas";

  // The next round replays the same window and converges.
  ASSERT_TRUE(db.view_manager()->Maintain("ag").ok());
  EXPECT_EQ(Canon(Exec(&db, "SELECT g, n, sv, mx FROM ag")),
            Canon(Exec(&db, "SELECT g, COUNT(*) AS n, SUM(v) AS sv, "
                            "MAX(v) AS mx FROM t GROUP BY g")));
}

// A SYNC view whose maintenance fails at commit time must not fail the
// client's (already durable) transaction; the pending change is applied
// by the next successful round.
TEST_F(ViewFailpointTest, SyncMaintenanceFailureDoesNotFailClientCommit) {
  Wal wal;
  Database db(&wal);
  Exec(&db, "CREATE TABLE t (a INT NOT NULL, g INT, v INT, PRIMARY KEY (a))");
  Exec(&db,
       "CREATE MATERIALIZED VIEW sv SYNC AS "
       "SELECT g, COUNT(*) AS n, SUM(v) AS s FROM t GROUP BY g");
  Exec(&db, "INSERT INTO t VALUES (1, 1, 10)");

  {
    // Hit 1 is the client commit's own WAL append (must succeed), hit 2
    // the synchronous maintenance commit (fails).
    FailpointConfig cfg;
    cfg.skip = 1;
    cfg.max_fires = 1;
    ScopedFailpoint fp("wal.append.error", cfg);
    Exec(&db, "INSERT INTO t VALUES (2, 1, 20)");  // client commit acked
  }
  // The row is durable and visible even though the view lagged.
  Exec(&db, "SET view_routing = off");
  QueryResult base = Exec(&db, "SELECT COUNT(*) AS n FROM t");
  EXPECT_EQ(base.rows[0][0].AsInt64(), 2);
  // Next maintenance round catches the view up.
  db.view_manager()->MaintainAll();
  EXPECT_EQ(Canon(Exec(&db, "SELECT g, n, s FROM sv")),
            Canon(Exec(&db, "SELECT g, COUNT(*) AS n, SUM(v) AS s FROM t "
                            "GROUP BY g")));
}

// ---------------------------------------------------------------------------
// Concurrency: a SYNC aggregate view over TPC-C orderline stays exactly
// consistent under the multi-threaded driver, while analytic queries
// route onto it concurrently.

TEST(ViewTest, ConcurrentMaintenanceUnderDriver) {
  Database db;
  CHConfig config;
  config.warehouses = 2;
  config.districts_per_warehouse = 2;
  config.customers_per_district = 10;
  config.items = 50;
  config.initial_orders_per_district = 5;
  CHBenchmark bench(&db, config);
  ASSERT_TRUE(bench.CreateTables().ok());
  ASSERT_TRUE(bench.Load().ok());
  Exec(&db,
       "CREATE MATERIALIZED VIEW ol_by_wh SYNC AS "
       "SELECT ol_w_id, COUNT(*) AS n, SUM(ol_quantity) AS qty "
       "FROM orderline GROUP BY ol_w_id");

  DriverOptions opts;
  opts.oltp_workers = 4;
  opts.olap_workers = 2;
  opts.ops_per_worker = 40;
  opts.seed = 20260807;
  opts.merge_delta_threshold = 64;
  opts.merge_interval_ms = 1;
  ConcurrentDriver driver(&bench, opts);
  DriverReport report = driver.Run();
  EXPECT_GT(report.txns.total(), 0u);

  // SYNC views are exact at quiescence: identical to full recomputation.
  Exec(&db, "SET view_routing = off");
  EXPECT_EQ(
      Canon(Exec(&db, "SELECT ol_w_id, n, qty FROM ol_by_wh")),
      Canon(Exec(&db, "SELECT ol_w_id, COUNT(*) AS n, "
                      "SUM(ol_quantity) AS qty FROM orderline "
                      "GROUP BY ol_w_id")));
  Exec(&db, "SET view_routing = on");
  ExpectRoutedEquals(&db, "SELECT ol_w_id, SUM(ol_quantity) AS qty "
                          "FROM orderline GROUP BY ol_w_id");
}

// Optional torture: many rounds of concurrent DML + maintenance + routing
// checks. OLTAP_VIEW_TORTURE_ROUNDS scales it up in the nightly job.
TEST(ViewTest, ViewTortureRounds) {
  int rounds = 1;
  if (const char* env = std::getenv("OLTAP_VIEW_TORTURE_ROUNDS")) {
    rounds = std::max(1, std::atoi(env));
  }
  for (int round = 0; round < rounds; ++round) {
    Database db;
    CHConfig config;
    config.warehouses = 2;
    config.districts_per_warehouse = 2;
    config.customers_per_district = 10;
    config.items = 50;
    config.initial_orders_per_district = 5;
    CHBenchmark bench(&db, config);
    ASSERT_TRUE(bench.CreateTables().ok());
    ASSERT_TRUE(bench.Load().ok());
    Exec(&db,
         "CREATE MATERIALIZED VIEW t_ol SYNC AS "
         "SELECT ol_w_id, ol_d_id, COUNT(*) AS n, SUM(ol_quantity) AS q "
         "FROM orderline GROUP BY ol_w_id, ol_d_id");
    Exec(&db,
         "CREATE MATERIALIZED VIEW t_no DEFERRED AS "
         "SELECT no_w_id, COUNT(*) AS n FROM neworder GROUP BY no_w_id");

    DriverOptions opts;
    opts.oltp_workers = 4;
    opts.olap_workers = 1;
    opts.ops_per_worker = 30;
    opts.seed = 1000 + round;
    opts.merge_delta_threshold = 64;
    opts.merge_interval_ms = 1;
    ConcurrentDriver driver(&bench, opts);
    (void)driver.Run();

    db.view_manager()->MaintainAll();
    Exec(&db, "SET view_routing = off");
    EXPECT_EQ(Canon(Exec(&db, "SELECT ol_w_id, ol_d_id, n, q FROM t_ol")),
              Canon(Exec(&db, "SELECT ol_w_id, ol_d_id, COUNT(*) AS n, "
                              "SUM(ol_quantity) AS q FROM orderline "
                              "GROUP BY ol_w_id, ol_d_id")))
        << "round " << round;
    EXPECT_EQ(Canon(Exec(&db, "SELECT no_w_id, n FROM t_no")),
              Canon(Exec(&db, "SELECT no_w_id, COUNT(*) AS n FROM neworder "
                              "GROUP BY no_w_id")))
        << "round " << round;
  }
}

// ---------------------------------------------------------------------------
// Observability: SHOW STATS rows and live modification counters.

TEST(ViewTest, ShowStatsViewsAndLiveMods) {
  Database db;
  Exec(&db, "CREATE TABLE s1 (k INT NOT NULL, v INT, PRIMARY KEY (k))");
  Exec(&db, "CREATE TABLE s2 (k INT NOT NULL, v INT, PRIMARY KEY (k))");
  Exec(&db, "INSERT INTO s1 VALUES (1, 10), (2, 20)");
  Exec(&db, "INSERT INTO s2 VALUES (1, 1)");
  Exec(&db, "ANALYZE s1");
  Exec(&db, "INSERT INTO s1 VALUES (3, 30)");
  Exec(&db,
       "CREATE MATERIALIZED VIEW sv DEFERRED AS "
       "SELECT v, COUNT(*) AS n FROM s1 GROUP BY v");
  Exec(&db, "INSERT INTO s1 VALUES (4, 40)");  // pending for the view

  std::map<std::string, int64_t> stats;
  for (const Row& row : Exec(&db, "SHOW STATS").rows) {
    stats[row[0].AsString()] = row[1].AsInt64();
  }
  // Analyzed table: analyzed rowcount + live mods since then.
  EXPECT_EQ(stats.at("stats.s1.rows"), 2);
  EXPECT_EQ(stats.at("stats.s1.mods_since_analyze"), 2);
  // Never-analyzed table still reports live mods (and no .rows row).
  EXPECT_EQ(stats.count("stats.s2.rows"), 0u);
  EXPECT_EQ(stats.at("stats.s2.mods_since_analyze"), 1);
  // View rows: contents, pending changes, staleness.
  EXPECT_EQ(stats.at("view.sv.rows"), 3);  // v=10,20,30 groups at build
  EXPECT_EQ(stats.at("view.sv.pending"), 1);
  EXPECT_GE(stats.at("view.sv.staleness_us"), 0);

  db.view_manager()->MaintainAll();
  stats.clear();
  for (const Row& row : Exec(&db, "SHOW STATS").rows) {
    stats[row[0].AsString()] = row[1].AsInt64();
  }
  EXPECT_EQ(stats.at("view.sv.rows"), 4);
  EXPECT_EQ(stats.at("view.sv.pending"), 0);
  EXPECT_GT(stats.at("view.maintain_runs"), 0);
}

}  // namespace
}  // namespace oltap
