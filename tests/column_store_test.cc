#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "storage/column_store.h"

namespace oltap {
namespace {

Schema KeyedSchema() {
  return SchemaBuilder()
      .AddInt64("id", false)
      .AddString("name")
      .AddDouble("score")
      .SetKey({"id"})
      .Build();
}

Row MakeRow(int64_t id, const std::string& name, double score) {
  return Row{Value::Int64(id), Value::String(name), Value::Double(score)};
}

std::string KeyOf(int64_t id) {
  Schema s = KeyedSchema();
  return EncodeKey(s, MakeRow(id, "", 0));
}

TEST(ColumnTableTest, InsertLookupDelete) {
  ColumnTable table(KeyedSchema());
  ASSERT_TRUE(table.InsertCommitted(MakeRow(1, "a", 1.5), 10).ok());
  Row out;
  EXPECT_FALSE(table.Lookup(KeyOf(1), 9, &out));  // before insert
  ASSERT_TRUE(table.Lookup(KeyOf(1), 10, &out));
  EXPECT_EQ(out[1].AsString(), "a");

  ASSERT_TRUE(table.DeleteCommitted(KeyOf(1), 20).ok());
  EXPECT_TRUE(table.Lookup(KeyOf(1), 15, &out));   // still visible at 15
  EXPECT_FALSE(table.Lookup(KeyOf(1), 20, &out));  // gone at 20
}

TEST(ColumnTableTest, DuplicateInsertRejected) {
  ColumnTable table(KeyedSchema());
  ASSERT_TRUE(table.InsertCommitted(MakeRow(1, "a", 1), 10).ok());
  Status st = table.InsertCommitted(MakeRow(1, "b", 2), 20);
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
}

TEST(ColumnTableTest, ReinsertAfterDelete) {
  ColumnTable table(KeyedSchema());
  ASSERT_TRUE(table.InsertCommitted(MakeRow(1, "a", 1), 10).ok());
  ASSERT_TRUE(table.DeleteCommitted(KeyOf(1), 20).ok());
  ASSERT_TRUE(table.InsertCommitted(MakeRow(1, "a2", 3), 30).ok());
  Row out;
  ASSERT_TRUE(table.Lookup(KeyOf(1), 30, &out));
  EXPECT_EQ(out[1].AsString(), "a2");
  // The old version remains visible at its timestamps.
  ASSERT_TRUE(table.Lookup(KeyOf(1), 15, &out));
  EXPECT_EQ(out[1].AsString(), "a");
  EXPECT_FALSE(table.Lookup(KeyOf(1), 25, &out));
}

TEST(ColumnTableTest, UpdateCreatesNewVersion) {
  ColumnTable table(KeyedSchema());
  ASSERT_TRUE(table.InsertCommitted(MakeRow(1, "v1", 1), 10).ok());
  ASSERT_TRUE(table.UpdateCommitted(KeyOf(1), MakeRow(1, "v2", 2), 20).ok());
  Row out;
  ASSERT_TRUE(table.Lookup(KeyOf(1), 15, &out));
  EXPECT_EQ(out[1].AsString(), "v1");
  ASSERT_TRUE(table.Lookup(KeyOf(1), 20, &out));
  EXPECT_EQ(out[1].AsString(), "v2");
}

TEST(ColumnTableTest, LastWriteTs) {
  ColumnTable table(KeyedSchema());
  EXPECT_EQ(table.LastWriteTs(KeyOf(1)), 0u);
  ASSERT_TRUE(table.InsertCommitted(MakeRow(1, "a", 1), 10).ok());
  EXPECT_EQ(table.LastWriteTs(KeyOf(1)), 10u);
  ASSERT_TRUE(table.UpdateCommitted(KeyOf(1), MakeRow(1, "b", 2), 25).ok());
  EXPECT_EQ(table.LastWriteTs(KeyOf(1)), 25u);
}

TEST(ColumnTableTest, BulkLoadToMainThenLookup) {
  ColumnTable table(KeyedSchema());
  std::vector<Row> rows;
  for (int64_t i = 0; i < 100; ++i) {
    rows.push_back(MakeRow(i, "n" + std::to_string(i), i * 0.5));
  }
  ASSERT_TRUE(table.BulkLoadToMain(rows, 5).ok());
  EXPECT_EQ(table.main_size(), 100u);
  EXPECT_EQ(table.delta_size(), 0u);
  Row out;
  ASSERT_TRUE(table.Lookup(KeyOf(42), 5, &out));
  EXPECT_EQ(out[1].AsString(), "n42");
  EXPECT_FALSE(table.Lookup(KeyOf(42), 4, &out));  // before build_ts
}

TEST(ColumnTableTest, BulkLoadRequiresEmptyTable) {
  ColumnTable table(KeyedSchema());
  ASSERT_TRUE(table.InsertCommitted(MakeRow(1, "a", 1), 1).ok());
  Status st = table.BulkLoadToMain({MakeRow(2, "b", 2)}, 2);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(ColumnTableTest, SnapshotSeesConsistentState) {
  ColumnTable table(KeyedSchema());
  ASSERT_TRUE(table.InsertCommitted(MakeRow(1, "a", 1), 10).ok());
  ColumnTable::Snapshot snap = table.GetSnapshot(10);
  // A later delete must not affect the snapshot's view at ts 10.
  ASSERT_TRUE(table.DeleteCommitted(KeyOf(1), 20).ok());
  size_t visible = 0;
  snap.delta->ForEachVisible(snap.read_ts,
                             [&](uint32_t, const Row&) { ++visible; });
  EXPECT_EQ(visible, 1u);
}

TEST(ColumnTableTest, UnkeyedTableAppendsOnly) {
  Schema schema = SchemaBuilder().AddInt64("x").Build();
  ColumnTable table(schema);
  ASSERT_TRUE(table.InsertCommitted(Row{Value::Int64(1)}, 1).ok());
  ASSERT_TRUE(table.InsertCommitted(Row{Value::Int64(1)}, 2).ok());
  EXPECT_EQ(table.delta_size(), 2u);
  EXPECT_EQ(table.DeleteCommitted("k", 3).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ColumnTableTest, ArityMismatchRejected) {
  ColumnTable table(KeyedSchema());
  Status st = table.InsertCommitted(Row{Value::Int64(1)}, 1);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(MainFragmentTest, VisibleMaskRespectsDeleteTimestamps) {
  std::vector<ColumnSegment> cols;
  cols.push_back(ColumnSegment::BuildInt64({1, 2, 3, 4}));
  MainFragment frag(std::move(cols), 4, /*build_ts=*/5);
  frag.MarkDeleted(1, 10);
  frag.MarkDeleted(3, 20);

  BitVector mask;
  frag.VisibleMask(/*read_ts=*/4, &mask);
  EXPECT_EQ(mask.CountSet(), 0u);  // before build
  frag.VisibleMask(5, &mask);
  EXPECT_EQ(mask.CountSet(), 4u);  // deletes are later
  frag.VisibleMask(10, &mask);
  EXPECT_EQ(mask.CountSet(), 3u);
  EXPECT_FALSE(mask.Get(1));
  frag.VisibleMask(20, &mask);
  EXPECT_EQ(mask.CountSet(), 2u);
}

TEST(MainFragmentTest, PerRowInsertTimestamps) {
  std::vector<ColumnSegment> cols;
  cols.push_back(ColumnSegment::BuildInt64({1, 2, 3}));
  MainFragment frag(std::move(cols), 3, /*build_ts=*/30,
                    std::vector<Timestamp>{10, 20, 30});
  EXPECT_TRUE(frag.VisibleAt(0, 10));
  EXPECT_FALSE(frag.VisibleAt(1, 10));
  BitVector mask;
  frag.VisibleMask(20, &mask);
  EXPECT_EQ(mask.CountSet(), 2u);
  EXPECT_EQ(frag.InsertTsOf(2), 30u);
}

TEST(MainFragmentTest, EarliestDeleteWins) {
  std::vector<ColumnSegment> cols;
  cols.push_back(ColumnSegment::BuildInt64({1}));
  MainFragment frag(std::move(cols), 1, 0);
  frag.MarkDeleted(0, 50);
  frag.MarkDeleted(0, 40);  // racing earlier delete
  EXPECT_FALSE(frag.VisibleAt(0, 45));
  EXPECT_TRUE(frag.VisibleAt(0, 39));
}

TEST(MainFragmentTest, GetRowReconstructsTuple) {
  std::vector<ColumnSegment> cols;
  cols.push_back(ColumnSegment::BuildInt64({7, 8}));
  cols.push_back(ColumnSegment::BuildString({"x", "y"}));
  MainFragment frag(std::move(cols), 2, 0);
  Row r = frag.GetRow(1);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0].AsInt64(), 8);
  EXPECT_EQ(r[1].AsString(), "y");
}

}  // namespace
}  // namespace oltap
