#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "dist/chaos.h"
#include "dist/circuit_breaker.h"
#include "dist/network.h"
#include "dist/partition.h"

namespace oltap {
namespace {

Schema AccountSchema() {
  return SchemaBuilder()
      .AddInt64("id", false)
      .AddInt64("balance")
      .SetKey({"id"})
      .Build();
}

Row MakeRow(int64_t id, int64_t balance) {
  return Row{Value::Int64(id), Value::Int64(balance)};
}

// Fault-tolerant engine with a fast retry budget and a breaker that
// recovers instantly after a heal (cooldown 0: open promotes straight to
// half-open, so the first post-heal call probes and closes it).
DistributedEngine::Options ChaosNet(int nodes, int partitions, int rf) {
  DistributedEngine::Options opts;
  opts.num_nodes = nodes;
  opts.num_partitions = partitions;
  opts.replication_factor = rf;
  opts.net.base_latency_us = 0;
  opts.net.per_kb_us = 0;
  opts.rpc_retry.max_attempts = 2;
  opts.rpc_retry.initial_backoff_us = 1;
  opts.rpc_retry.max_backoff_us = 2;
  opts.breaker.failure_threshold = 3;
  opts.breaker.open_cooldown_us = 0;
  opts.max_read_staleness = 1'000'000'000;
  return opts;
}

TEST(SimulatedNetworkFaultTest, PartitionCutsBothDirectionsUntilHeal) {
  SimulatedNetwork net(SimulatedNetwork::Options{0, 0});
  net.Partition({0, 1}, {2, 3});
  EXPECT_FALSE(net.Reachable(0, 2));
  EXPECT_FALSE(net.Reachable(3, 1));
  EXPECT_TRUE(net.Reachable(0, 1));
  EXPECT_TRUE(net.Reachable(2, 3));
  EXPECT_TRUE(net.TryTransfer(0, 1, 64).ok());
  EXPECT_TRUE(net.TryTransfer(0, 2, 64).IsUnavailable());
  EXPECT_TRUE(net.TryRoundTrip(2, 0, 64, 64).IsUnavailable());
  EXPECT_EQ(net.dropped(), 2u);
  net.Heal();
  EXPECT_TRUE(net.Reachable(0, 2));
  EXPECT_TRUE(net.TryRoundTrip(2, 0, 64, 64).ok());
}

TEST(SimulatedNetworkFaultTest, OneWayPartitionIsAsymmetric) {
  SimulatedNetwork net(SimulatedNetwork::Options{0, 0});
  net.PartitionOneWay({0}, {1, 2});
  EXPECT_FALSE(net.Reachable(0, 1));
  EXPECT_TRUE(net.Reachable(1, 0));  // the half-open link
  EXPECT_TRUE(net.TryTransfer(0, 1, 64).IsUnavailable());
  EXPECT_TRUE(net.TryTransfer(1, 0, 64).ok());
  // Round trips die whichever leg crosses the cut: 1→0 loses the reply,
  // 0→2 loses the request.
  EXPECT_TRUE(net.TryRoundTrip(1, 0, 64, 64).IsUnavailable());
  EXPECT_TRUE(net.TryRoundTrip(0, 2, 64, 64).IsUnavailable());
  net.Heal();
  EXPECT_TRUE(net.TryTransfer(0, 1, 64).ok());
}

TEST(SimulatedNetworkFaultTest, CrashedNodeIsUnreachableUntilRestart) {
  SimulatedNetwork net(SimulatedNetwork::Options{0, 0});
  net.SetNodeDown(2);
  EXPECT_FALSE(net.Reachable(0, 2));
  EXPECT_FALSE(net.Reachable(2, 0));
  EXPECT_TRUE(net.Reachable(0, 1));
  // Heal() restores partitions, not crashed nodes.
  net.Heal();
  EXPECT_FALSE(net.Reachable(0, 2));
  net.SetNodeUp(2);
  EXPECT_TRUE(net.Reachable(0, 2));
}

TEST(SimulatedNetworkFaultTest, SameSeedSameDropSchedule) {
  SimulatedNetwork::FaultOptions faults;
  faults.drop_probability = 0.3;
  faults.duplicate_probability = 0.2;
  faults.seed = 7;

  auto run = [&](uint64_t seed) {
    SimulatedNetwork net(SimulatedNetwork::Options{0, 0});
    SimulatedNetwork::FaultOptions f = faults;
    f.seed = seed;
    net.SetFaults(f);
    std::vector<char> outcomes;
    for (int i = 0; i < 200; ++i) {
      outcomes.push_back(net.TryTransfer(0, 1, 64).ok() ? 1 : 0);
    }
    return std::make_tuple(outcomes, net.dropped(), net.duplicated());
  };

  auto a = run(7);
  auto b = run(7);
  auto c = run(8);
  EXPECT_EQ(std::get<0>(a), std::get<0>(b));
  EXPECT_EQ(std::get<1>(a), std::get<1>(b));
  EXPECT_EQ(std::get<2>(a), std::get<2>(b));
  EXPECT_GT(std::get<1>(a), 0u);  // the schedule actually drops
  EXPECT_NE(std::get<0>(a), std::get<0>(c));  // and depends on the seed
  // ClearFaults restores a reliable link.
  SimulatedNetwork net(SimulatedNetwork::Options{0, 0});
  net.SetFaults(faults);
  net.ClearFaults();
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(net.TryTransfer(0, 1, 64).ok());
}

TEST(CircuitBreakerTest, ClosedOpenHalfOpenLifecycle) {
  ManualClock clock;
  CircuitBreaker::Options opts;
  opts.failure_threshold = 3;
  opts.open_cooldown_us = 1000;
  opts.half_open_probes = 1;
  opts.clock = &clock;
  CircuitBreaker cb(opts);

  EXPECT_EQ(cb.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(cb.Allow().ok());
  cb.RecordFailure();
  cb.RecordFailure();
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kClosed);  // below threshold
  cb.RecordFailure();
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kOpen);
  EXPECT_TRUE(cb.Allow().IsUnavailable());  // shedding, O(1)
  EXPECT_EQ(cb.rejected(), 1u);

  // Cooldown elapses → half-open: exactly one probe passes.
  clock.AdvanceMicros(1000);
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(cb.Allow().ok());
  EXPECT_TRUE(cb.Allow().IsUnavailable());  // probe budget spent

  // A failed probe reopens and restarts the cooldown.
  cb.RecordFailure();
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kOpen);
  clock.AdvanceMicros(999);
  EXPECT_TRUE(cb.Allow().IsUnavailable());
  clock.AdvanceMicros(1);
  EXPECT_TRUE(cb.Allow().ok());

  // A successful probe closes the breaker for good.
  cb.RecordSuccess();
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(cb.Allow().ok());
}

TEST(CircuitBreakerTest, SuccessResetsConsecutiveFailureCount) {
  ManualClock clock;
  CircuitBreaker::Options opts;
  opts.failure_threshold = 2;
  opts.clock = &clock;
  CircuitBreaker cb(opts);
  for (int i = 0; i < 10; ++i) {
    cb.RecordFailure();
    cb.RecordSuccess();  // never two in a row → never trips
  }
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerSetTest, OpenCountTracksPerNodeState) {
  ManualClock clock;
  CircuitBreaker::Options opts;
  opts.failure_threshold = 1;
  opts.open_cooldown_us = 1'000'000;
  opts.clock = &clock;
  CircuitBreakerSet set(4, opts);
  EXPECT_EQ(set.open_count(), 0);
  set.RecordFailure(1);
  set.RecordFailure(3);
  EXPECT_EQ(set.open_count(), 2);
  EXPECT_TRUE(set.Allow(1).IsUnavailable());
  EXPECT_TRUE(set.Allow(0).ok());
  // Cooldown elapses: both breakers move to half-open (no longer open).
  clock.AdvanceMicros(1'000'000);
  ASSERT_TRUE(set.Allow(1).ok());  // half-open probe
  set.RecordSuccess(1);            // node 1 closes
  ASSERT_TRUE(set.Allow(3).ok());
  set.RecordFailure(3);  // failed probe: node 3 reopens
  EXPECT_EQ(set.open_count(), 1);
  EXPECT_TRUE(set.Allow(1).ok());
}

TEST(ChaosPlanTest, SameSeedSameSchedule) {
  ChaosPlan::Options opts;
  opts.num_nodes = 5;
  opts.rounds = 32;
  opts.seed = 1234;
  ChaosPlan a(opts);
  ChaosPlan b(opts);
  ASSERT_EQ(a.num_rounds(), 32);
  ASSERT_EQ(b.num_rounds(), 32);
  EXPECT_EQ(a.Describe(), b.Describe());
  for (int i = 0; i < a.num_rounds(); ++i) {
    EXPECT_EQ(a.round(i).kind, b.round(i).kind) << "round " << i;
    EXPECT_EQ(a.round(i).group, b.round(i).group) << "round " << i;
    EXPECT_EQ(a.round(i).faults.seed, b.round(i).faults.seed);
    EXPECT_DOUBLE_EQ(a.round(i).faults.drop_probability,
                     b.round(i).faults.drop_probability);
  }
  opts.seed = 1235;
  ChaosPlan c(opts);
  EXPECT_NE(a.Describe(), c.Describe());
}

TEST(ChaosPlanTest, PartitionsAlwaysLeaveAMajority) {
  ChaosPlan::Options opts;
  opts.num_nodes = 5;
  opts.rounds = 64;
  opts.seed = 99;
  ChaosPlan plan(opts);
  int partitions = 0, crashes = 0;
  for (int i = 0; i < plan.num_rounds(); ++i) {
    const ChaosPlan::Round& r = plan.round(i);
    for (int node : r.group) {
      EXPECT_GE(node, 0);
      EXPECT_LT(node, opts.num_nodes);
    }
    switch (r.kind) {
      case ChaosPlan::Round::Kind::kSymmetricPartition:
      case ChaosPlan::Round::Kind::kAsymmetricPartition:
        ++partitions;
        EXPECT_GE(r.group.size(), 1u);
        // Strict minority: a write quorum survives on the other side.
        EXPECT_LE(r.group.size(),
                  static_cast<size_t>((opts.num_nodes - 1) / 2));
        break;
      case ChaosPlan::Round::Kind::kCrash:
        ++crashes;
        EXPECT_EQ(r.group.size(), 1u);
        break;
      case ChaosPlan::Round::Kind::kNoiseOnly:
        EXPECT_TRUE(r.group.empty());
        break;
    }
  }
  // 64 weighted draws: every structural kind should have come up.
  EXPECT_GT(partitions, 0);
  EXPECT_GT(crashes, 0);
}

TEST(ChaosPlanTest, InstallAndRestoreDriveTheNetwork) {
  ChaosPlan::Options opts;
  opts.num_nodes = 4;
  opts.rounds = 48;
  opts.seed = 7;
  ChaosPlan plan(opts);
  SimulatedNetwork net(SimulatedNetwork::Options{0, 0});
  for (int i = 0; i < plan.num_rounds(); ++i) {
    const ChaosPlan::Round& r = plan.round(i);
    plan.Install(i, &net);
    if (!r.group.empty()) {
      int inside = *r.group.begin();
      int outside = -1;
      for (int n = 0; n < opts.num_nodes; ++n) {
        if (r.group.count(n) == 0) outside = n;
      }
      ASSERT_GE(outside, 0);
      // Whatever the structural fault, inside→outside traffic is cut.
      EXPECT_FALSE(net.Reachable(inside, outside)) << "round " << i;
      if (r.kind == ChaosPlan::Round::Kind::kAsymmetricPartition) {
        EXPECT_TRUE(net.Reachable(outside, inside)) << "round " << i;
      }
    }
    plan.Restore(i, &net);
    for (int a = 0; a < opts.num_nodes; ++a) {
      for (int b = 0; b < opts.num_nodes; ++b) {
        EXPECT_TRUE(net.Reachable(a, b));
      }
    }
  }
}

TEST(DistributedEngineChaosTest, MinorityClientWritesFailWithoutEffect) {
  DistributedEngine engine(AccountSchema(), ChaosNet(4, 8, 3));
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(engine.InsertFrom(0, MakeRow(i, i)).ok());
  }

  // Cut node 0 away. A client stranded there can reach no tablet quorum:
  // every write must fail cleanly — kUnavailable and no state change.
  engine.network()->Partition({0}, {1, 2, 3});
  for (int64_t i = 100; i < 120; ++i) {
    Status st = engine.InsertFrom(0, MakeRow(i, i));
    EXPECT_TRUE(st.IsUnavailable()) << st.ToString();
  }
  EXPECT_GT(engine.quorum_failures() + engine.rpc_retries(), 0u);

  // Majority-side clients keep writing: tablets homed on node 0 fail over
  // to a surviving replica.
  size_t majority_ok = 0;
  for (int64_t i = 200; i < 260; ++i) {
    if (engine.InsertFrom(1 + (i % 3), MakeRow(i, i)).ok()) ++majority_ok;
  }
  EXPECT_EQ(majority_ok, 60u);
  EXPECT_GT(engine.leader_failovers(), 0u);

  engine.network()->Heal();
  engine.CatchUpReplicas();
  EXPECT_TRUE(engine.CheckReplicasConsistent());
  EXPECT_EQ(engine.TotalRows(), 160u);  // 100 pre-fault + 60 failed-over

  // The healed minority node is a full citizen again.
  EXPECT_TRUE(engine.InsertFrom(0, MakeRow(500, 500)).ok());
  EXPECT_TRUE(engine.CheckReplicasConsistent());
}

TEST(DistributedEngineChaosTest, FailoverLookupReadsFromSurvivingReplica) {
  DistributedEngine engine(AccountSchema(), ChaosNet(4, 8, 3));
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(engine.InsertFrom(0, MakeRow(i, i * 10)).ok());
  }

  // Crash the home leader of key 7's tablet; reads from the surviving
  // side must fail over to a replica.
  Schema schema = AccountSchema();
  int p = engine.PartitionOf(EncodeKey(schema, MakeRow(7, 0)));
  int leader = engine.LeaderNode(p);
  engine.network()->SetNodeDown(leader);

  int client = (leader + 1) % 4;
  auto r = engine.FailoverLookup(client, MakeRow(7, 0));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)[1].AsInt64(), 70);
  EXPECT_GT(engine.read_failovers() + engine.leader_failovers(), 0u);

  // Missing keys are kNotFound (reached a replica), not kUnavailable.
  auto missing = engine.FailoverLookup(client, MakeRow(9999, 0));
  EXPECT_TRUE(missing.status().IsNotFound()) << missing.status().ToString();

  engine.network()->SetNodeUp(leader);
  engine.CatchUpReplicas();
  EXPECT_TRUE(engine.CheckReplicasConsistent());
}

// Satellite: same seed ⇒ identical fault schedule *and* identical
// workload outcome, end to end through the engine.
TEST(DistributedEngineChaosTest, SameSeedSameOutcome) {
  auto run = [](uint64_t seed) {
    DistributedEngine engine(AccountSchema(), ChaosNet(4, 4, 3));
    ChaosPlan::Options copts;
    copts.num_nodes = 4;
    copts.rounds = 6;
    copts.seed = seed;
    copts.max_jitter_us = 0;  // keep the test fast
    ChaosPlan plan(copts);
    std::vector<char> outcomes;
    int64_t next_id = 0;
    for (int i = 0; i < plan.num_rounds(); ++i) {
      plan.Install(i, engine.network());
      for (int k = 0; k < 30; ++k) {
        int64_t id = next_id++;
        Status st = engine.InsertFrom(static_cast<int>(id % 4),
                                      MakeRow(id, id));
        outcomes.push_back(st.ok() ? 1 : 0);
      }
      plan.Restore(i, engine.network());
      engine.CatchUpReplicas();
    }
    EXPECT_TRUE(engine.CheckReplicasConsistent());
    return std::make_pair(outcomes, engine.TotalRows());
  };
  auto a = run(42);
  auto b = run(42);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace oltap
