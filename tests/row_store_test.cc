#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "storage/row_store.h"

namespace oltap {
namespace {

Schema TestSchema() {
  return SchemaBuilder()
      .AddInt64("id", false)
      .AddString("payload")
      .SetKey({"id"})
      .Build();
}

std::string Key(int64_t id) {
  Schema s = TestSchema();
  return EncodeKey(s, Row{Value::Int64(id), Value::String("")});
}

TEST(RowStoreTest, GetOrCreateAndGet) {
  RowStore store(TestSchema());
  EXPECT_EQ(store.Get(Key(1)), nullptr);
  RowStore::Entry* e = store.GetOrCreate(Key(1));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(store.Get(Key(1)), e);
  EXPECT_EQ(store.GetOrCreate(Key(1)), e);  // idempotent
  EXPECT_EQ(store.num_entries(), 1u);
}

TEST(RowStoreTest, IterationIsKeyOrdered) {
  RowStore store(TestSchema());
  std::vector<int64_t> ids = {5, 1, 9, 3, 7, 2, 8, 4, 6};
  for (int64_t id : ids) store.GetOrCreate(Key(id));
  RowStore::Iterator it(&store);
  int64_t expected = 1;
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    EXPECT_EQ(it.key(), Key(expected));
    ++expected;
  }
  EXPECT_EQ(expected, 10);
}

TEST(RowStoreTest, SeekPositionsAtLowerBound) {
  RowStore store(TestSchema());
  for (int64_t id : {10, 20, 30}) store.GetOrCreate(Key(id));
  RowStore::Iterator it(&store);
  it.Seek(Key(15));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), Key(20));
  it.Seek(Key(30));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), Key(30));
  it.Seek(Key(31));
  EXPECT_FALSE(it.Valid());
}

TEST(RowStoreTest, InstallVersionCas) {
  RowStore store(TestSchema());
  RowStore::Entry* e = store.GetOrCreate(Key(1));
  auto* v1 = new RowVersion(Row{Value::Int64(1), Value::String("a")});
  v1->begin.store(1);
  EXPECT_TRUE(RowStore::InstallVersion(e, nullptr, v1));
  EXPECT_EQ(e->head.load(), v1);

  auto* v2 = new RowVersion(Row{Value::Int64(1), Value::String("b")});
  v2->begin.store(2);
  // Wrong expected head fails.
  EXPECT_FALSE(RowStore::InstallVersion(e, nullptr, v2));
  EXPECT_TRUE(RowStore::InstallVersion(e, v1, v2));
  EXPECT_EQ(e->head.load(), v2);
  EXPECT_EQ(v2->next, v1);
}

TEST(RowStoreTest, ConcurrentDistinctInserts) {
  RowStore store(TestSchema());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < kPerThread; ++i) {
        store.GetOrCreate(Key(t * kPerThread + i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(store.num_entries(),
            static_cast<size_t>(kThreads) * kPerThread);
  // Everything findable and ordered.
  RowStore::Iterator it(&store);
  size_t count = 0;
  std::string prev;
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    if (count > 0) {
      EXPECT_LT(prev, it.key());
    }
    prev = it.key();
    ++count;
  }
  EXPECT_EQ(count, static_cast<size_t>(kThreads) * kPerThread);
}

TEST(RowStoreTest, ConcurrentSameKeyInsertsYieldOneEntry) {
  RowStore store(TestSchema());
  constexpr int kThreads = 8;
  std::atomic<RowStore::Entry*> first{nullptr};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        RowStore::Entry* e = store.GetOrCreate(Key(i));
        RowStore::Entry* expected = nullptr;
        if (i == 0) {
          if (!first.compare_exchange_strong(expected, e) && expected != e) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(store.num_entries(), 500u);
}

TEST(RowStoreTest, ConcurrentReadersDuringInserts) {
  RowStore store(TestSchema());
  std::atomic<bool> stop{false};
  std::atomic<int> reader_errors{0};
  std::thread writer([&] {
    for (int i = 0; i < 20000; ++i) store.GetOrCreate(Key(i));
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(r + 1);
      while (!stop.load(std::memory_order_acquire)) {
        // Iterate a stretch; keys must stay sorted even mid-insert.
        RowStore::Iterator it(&store);
        it.Seek(Key(static_cast<int64_t>(rng.Uniform(20000))));
        std::string prev;
        for (int steps = 0; it.Valid() && steps < 50; it.Next(), ++steps) {
          if (!prev.empty() && prev >= it.key()) reader_errors.fetch_add(1);
          prev = it.key();
        }
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(reader_errors.load(), 0);
  EXPECT_EQ(store.num_entries(), 20000u);
}

}  // namespace
}  // namespace oltap
