#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <vector>

#include "common/rng.h"
#include "txn/hstore_executor.h"

namespace oltap {
namespace {

TEST(HStoreTest, SinglePartitionTxnsRunSeriallyPerPartition) {
  HStoreExecutor exec(4);
  // Unsynchronized counters: safe iff the executor really serializes
  // per-partition work.
  std::vector<int64_t> counters(4, 0);
  std::vector<std::future<Status>> futures;
  for (int i = 0; i < 4000; ++i) {
    int p = i % 4;
    futures.push_back(exec.Submit({p}, [&counters, p] {
      ++counters[p];
      return Status::OK();
    }));
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  for (int p = 0; p < 4; ++p) EXPECT_EQ(counters[p], 1000);
  EXPECT_EQ(exec.single_partition_txns(), 4000u);
  EXPECT_EQ(exec.multi_partition_txns(), 0u);
}

TEST(HStoreTest, MultiPartitionTxnHasExclusiveAccess) {
  HStoreExecutor exec(4);
  std::vector<int64_t> counters(4, 0);
  std::vector<std::future<Status>> futures;
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    if (rng.Bernoulli(0.2)) {
      // Multi-partition: touches all counters; correctness requires every
      // involved partition to be stalled.
      futures.push_back(exec.Submit({0, 1, 2, 3}, [&counters] {
        for (auto& c : counters) ++c;
        return Status::OK();
      }));
    } else {
      int p = static_cast<int>(rng.Uniform(4));
      futures.push_back(exec.Submit({p}, [&counters, p] {
        ++counters[p];
        return Status::OK();
      }));
    }
  }
  int64_t expected_multi = 0, expected_single[4] = {0, 0, 0, 0};
  // Recompute expectations deterministically with the same seed.
  Rng rng2(3);
  for (int i = 0; i < 2000; ++i) {
    if (rng2.Bernoulli(0.2)) {
      ++expected_multi;
    } else {
      ++expected_single[rng2.Uniform(4)];
    }
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(counters[p], expected_multi + expected_single[p]);
  }
  EXPECT_EQ(exec.multi_partition_txns(),
            static_cast<uint64_t>(expected_multi));
}

TEST(HStoreTest, WorkReturnsStatus) {
  HStoreExecutor exec(2);
  auto ok = exec.Submit({0}, [] { return Status::OK(); });
  auto bad = exec.Submit({1}, [] { return Status::Aborted("nope"); });
  EXPECT_TRUE(ok.get().ok());
  EXPECT_TRUE(bad.get().IsAborted());
}

TEST(HStoreTest, DuplicatePartitionsDeduped) {
  HStoreExecutor exec(2);
  auto f = exec.Submit({1, 1, 1}, [] { return Status::OK(); });
  EXPECT_TRUE(f.get().ok());
  EXPECT_EQ(exec.single_partition_txns(), 1u);
}

TEST(HStoreTest, DrainWaitsForAll) {
  HStoreExecutor exec(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 300; ++i) {
    exec.Submit({i % 3}, [&done] {
      done.fetch_add(1);
      return Status::OK();
    });
  }
  exec.Drain();
  EXPECT_EQ(done.load(), 300);
}

TEST(HStoreTest, InterleavedMultiPartitionPairsDoNotDeadlock) {
  // Jobs touching {0,1}, {1,2}, {2,0} concurrently: queue-order rendezvous
  // must not deadlock because each job is enqueued to all its partitions
  // atomically in Submit (consistent order across queues).
  HStoreExecutor exec(3);
  std::vector<std::future<Status>> futures;
  for (int i = 0; i < 900; ++i) {
    int a = i % 3, b = (i + 1) % 3;
    futures.push_back(
        exec.Submit({a, b}, [] { return Status::OK(); }));
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
}

}  // namespace
}  // namespace oltap
