#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/catalog.h"
#include "txn/wal.h"

namespace oltap {
namespace {

// Replay-robustness fuzz: random truncations and bit flips over a valid
// log must never crash Wal::Replay, must flag truncated_tail whenever the
// log ends mid-record, and must never apply a record whose checksum
// fails — the applied transactions are always an exact prefix of the
// intact log.

constexpr int kRecords = 40;
constexpr Timestamp kFarFuture = 1'000'000'000;

Schema FuzzSchema() {
  return SchemaBuilder()
      .AddInt64("id", false)
      .AddString("s")
      .AddDouble("d")
      .SetKey({"id"})
      .Build();
}

Row MakeRow(int64_t id) {
  return Row{Value::Int64(id), Value::String("row-" + std::to_string(id)),
             Value::Double(static_cast<double>(id) * 1.5)};
}

std::unique_ptr<Catalog> FreshCatalog() {
  auto catalog = std::make_unique<Catalog>();
  EXPECT_TRUE(
      catalog->CreateTable("t", FuzzSchema(), TableFormat::kColumn).ok());
  return catalog;
}

// Builds a log of kRecords single-insert commits (record i inserts id i
// at commit_ts i+1) and returns the byte offset where each record ends.
std::string BuildLog(std::vector<size_t>* boundaries) {
  Wal wal;
  boundaries->clear();
  for (int i = 0; i < kRecords; ++i) {
    WalOp op;
    op.kind = WalOp::kInsert;
    op.table = "t";
    op.row = MakeRow(i);
    EXPECT_TRUE(wal.LogCommit(/*txn_id=*/i + 1, /*commit_ts=*/i + 1, {op})
                    .ok());
    boundaries->push_back(wal.size());
  }
  return wal.buffer();
}

// The applied state must be exactly the first `applied` inserts.
void ExpectPrefixState(const Catalog& catalog, size_t applied) {
  const Table* table = catalog.GetTable("t");
  ASSERT_EQ(table->CountVisible(kFarFuture), applied);
  for (size_t i = 0; i < applied; ++i) {
    Row out;
    ASSERT_TRUE(table->Lookup(
        EncodeKey(table->schema(), MakeRow(static_cast<int64_t>(i))),
        kFarFuture, &out));
    EXPECT_EQ(out[1].AsString(), "row-" + std::to_string(i));
  }
}

TEST(WalFuzzTest, RandomTruncationNeverCrashesAndAppliesPrefix) {
  std::vector<size_t> boundaries;
  const std::string log = BuildLog(&boundaries);
  std::set<size_t> boundary_set(boundaries.begin(), boundaries.end());
  Rng rng(31);

  std::vector<size_t> cuts;
  for (int iter = 0; iter < 300; ++iter) cuts.push_back(rng.Uniform(log.size()));
  // Exact record boundaries are the edge case: no tear to report.
  cuts.insert(cuts.end(), boundaries.begin(), boundaries.end());
  cuts.push_back(0);

  for (size_t cut : cuts) {
    SCOPED_TRACE("cut at " + std::to_string(cut));
    auto catalog = FreshCatalog();
    auto stats = Wal::Replay(log.substr(0, cut), catalog.get());
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    size_t full_records = 0;
    for (size_t b : boundaries) full_records += (b <= cut) ? 1 : 0;
    EXPECT_EQ(stats->txns_applied, full_records);
    EXPECT_EQ(stats->truncated_tail,
              cut != 0 && boundary_set.count(cut) == 0);
    ExpectPrefixState(*catalog, full_records);
  }
}

TEST(WalFuzzTest, RandomBitFlipsNeverApplyCorruptRecords) {
  std::vector<size_t> boundaries;
  const std::string log = BuildLog(&boundaries);
  Rng rng(32);

  for (int iter = 0; iter < 300; ++iter) {
    SCOPED_TRACE("iter " + std::to_string(iter));
    std::string fuzzed = log;
    int nflips = 1 + static_cast<int>(rng.Uniform(3));
    size_t first_hit_record = kRecords;
    for (int f = 0; f < nflips; ++f) {
      size_t pos = rng.Uniform(fuzzed.size());
      fuzzed[pos] ^= static_cast<char>(1u << rng.Uniform(8));
      // Which record does this byte belong to?
      size_t rec = 0;
      while (boundaries[rec] <= pos) ++rec;
      first_hit_record = std::min(first_hit_record, rec);
    }
    auto catalog = FreshCatalog();
    auto stats = Wal::Replay(fuzzed, catalog.get());
    // The checksum guards every field, so corruption can only look like
    // a torn tail — never a parse error or a misapplied record.
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->txns_applied, first_hit_record);
    EXPECT_TRUE(stats->truncated_tail);
    ExpectPrefixState(*catalog, first_hit_record);
  }
}

TEST(WalFuzzTest, CombinedTruncationAndFlipsStayWithinPrefix) {
  std::vector<size_t> boundaries;
  const std::string log = BuildLog(&boundaries);
  Rng rng(33);

  for (int iter = 0; iter < 200; ++iter) {
    SCOPED_TRACE("iter " + std::to_string(iter));
    std::string fuzzed = log.substr(0, rng.Uniform(log.size()) + 1);
    int nflips = static_cast<int>(rng.Uniform(4));
    for (int f = 0; f < nflips && !fuzzed.empty(); ++f) {
      size_t pos = rng.Uniform(fuzzed.size());
      fuzzed[pos] ^= static_cast<char>(1u << rng.Uniform(8));
    }
    auto catalog = FreshCatalog();
    auto stats = Wal::Replay(fuzzed, catalog.get());
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_LE(stats->txns_applied, static_cast<size_t>(kRecords));
    ExpectPrefixState(*catalog, stats->txns_applied);
  }
}

}  // namespace
}  // namespace oltap
