#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/failpoint.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "sql/session.h"
#include "storage/row.h"
#include "txn/checkpoint.h"
#include "txn/checkpoint_daemon.h"
#include "txn/wal.h"
#include "workload/chbench.h"
#include "workload/driver.h"

namespace oltap {
namespace {

// Checkpoint crash torture at driver scale: seeded rounds run the
// contended TPC-C mix with the checkpoint daemon rotating and truncating
// WAL segments underneath it, inject a checkpoint-path fault (torn image
// write, torn manifest write, daemon thread death, truncation error — or
// none), then "crash the process" at a random instant — a crash cut of
// the checkpoint store plus the sealed log, taken from a concurrent
// thread so the cut can land mid-checkpoint or mid-truncation — and
// recover a fresh database from the cut. Audits per round:
//   zero acked-commit loss:     every acknowledged NewOrder is in the
//                               recovered orders table;
//   zero unacked resurrection:  recovered row counts equal loaded +
//                               exactly the acknowledged commits;
//   deterministic recovery:     serial and parallel replay of the same
//                               cut produce byte-identical states;
//   bounded tail:               the WAL tail replayed after a checkpoint
//                               never exceeds what the driver committed.
//
// OLTAP_TORTURE_ROUNDS overrides the round count (sanitizer CI runs a
// reduced schedule; the chaos nightly runs the full 20+).

constexpr Timestamp kFarFuture = 1'000'000'000;

int RoundsFromEnv() {
  const char* env = std::getenv("OLTAP_TORTURE_ROUNDS");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 20;
}

CHConfig TortureConfig() {
  CHConfig config;
  config.warehouses = 2;  // 4 workers on 2 warehouses: contended
  config.districts_per_warehouse = 2;
  config.customers_per_district = 10;
  config.items = 50;
  config.initial_orders_per_district = 5;
  return config;
}

int64_t CountVisibleRows(Database* db, const std::string& table) {
  int64_t n = 0;
  db->catalog()->GetTable(table)->ScanVisible(kFarFuture,
                                              [&](const Row&) { ++n; });
  return n;
}

const char* kTables[] = {"warehouse", "district",  "customer",
                         "history",   "neworder",  "orders",
                         "orderline", "item",      "stock"};

std::map<std::string, std::vector<std::string>> Fingerprint(Database* db) {
  std::map<std::string, std::vector<std::string>> out;
  for (const char* name : kTables) {
    const Table* table = db->catalog()->GetTable(name);
    std::vector<std::string>& rows = out[name];
    table->ScanVisible(kFarFuture, [&](const Row& row) {
      rows.push_back(RowToString(row));
    });
    std::sort(rows.begin(), rows.end());
  }
  return out;
}

enum class Fault {
  kNone,
  kTornImage,
  kTornManifest,
  kDaemonCrash,
  kTruncateError
};

const char* FaultSite(Fault f) {
  switch (f) {
    case Fault::kNone:
      return nullptr;
    case Fault::kTornImage:
      return "checkpoint.write.torn";
    case Fault::kTornManifest:
      return "checkpoint.manifest.torn";
    case Fault::kDaemonCrash:
      return "checkpoint.daemon.crash";
    case Fault::kTruncateError:
      return "wal.truncate.error";
  }
  return nullptr;
}

// Recovers a fresh database from a crash cut. When the cut holds a usable
// checkpoint image, recovery starts from an EMPTY catalog (the image
// carries the schemas and the bulk-loaded rows). When it does not — crash
// before the first completed round, or every image torn — the fallback is
// a full WAL replay, which requires the same deterministic bulk load the
// original database started from (the load bypasses the log).
std::unique_ptr<Database> Recover(const CheckpointDaemon::CrashImage& crash,
                                  const CHConfig& config, ThreadPool* pool,
                                  Database::RecoveryReport* report_out) {
  auto recovered = std::make_unique<Database>();
  if (!SelectRecoveryImage(crash.store).ok()) {
    CHBenchmark bench(recovered.get(), config);
    EXPECT_TRUE(bench.CreateTables().ok());
    EXPECT_TRUE(bench.Load().ok());
  }
  auto report = recovered->RecoverFromCheckpointStore(crash.store, crash.wal,
                                                      pool);
  if (!report.ok()) {
    std::string dump = "store: manifest_bytes=" +
                       std::to_string(crash.store.manifest.size());
    for (const CheckpointStore::Image& img : crash.store.images) {
      dump += " img{id=" + std::to_string(img.id) +
              " ts=" + std::to_string(img.ts) +
              " bytes=" + std::to_string(img.data.size()) +
              " valid=" + (CheckpointIsValid(img.data) ? "y" : "n") + "}";
    }
    dump += " wal_bytes=" + std::to_string(crash.wal.size());
    ADD_FAILURE() << report.status().ToString() << "\n" << dump;
  }
  if (report.ok() && report_out != nullptr) *report_out = *report;
  return recovered;
}

TEST(CheckpointTortureTest, CrashAnywhereLosesNothingResurrectsNothing) {
  const int rounds = RoundsFromEnv();
  ThreadPool pool(4);
  uint64_t fires_total = 0;
  uint64_t rounds_with_checkpoint = 0;
  uint64_t rounds_truncated = 0;

  for (int round = 0; round < rounds; ++round) {
    const Fault fault = static_cast<Fault>(round % 5);
    const char* site = FaultSite(fault);
    SCOPED_TRACE("round " + std::to_string(round) + " fault " +
                 (site != nullptr ? site : "none"));
    Rng rng(0xc4b7 + static_cast<uint64_t>(round));

    Wal::Options wopts;
    wopts.segment_bytes = 1024u << rng.Uniform(3);  // 1k..4k: real rotation
    Wal wal(wopts);
    auto db = std::make_unique<Database>(&wal);
    CHConfig config = TortureConfig();
    CHBenchmark bench(db.get(), config);
    ASSERT_TRUE(bench.CreateTables().ok());
    ASSERT_TRUE(bench.Load().ok());  // bulk load, not logged

    const int64_t base_orders = CountVisibleRows(db.get(), "orders");
    const int64_t base_history = CountVisibleRows(db.get(), "history");

    // The daemon exists before the driver starts so the crash thread can
    // cut at any instant, including before the driver wires it up.
    CheckpointDaemon* daemon = db->EnsureCheckpointer();

    DriverOptions opts;
    opts.oltp_workers = 4;
    opts.olap_workers = 1;
    opts.ops_per_worker = 25;
    opts.seed = 7000 + static_cast<uint64_t>(round);
    opts.audit_commits = true;
    opts.group_commit = round % 2 == 0;
    opts.merge_delta_threshold = 64;
    opts.merge_interval_ms = 1;
    opts.run_checkpoint_daemon = true;
    opts.checkpoint_interval_us =
        1'000 + static_cast<int64_t>(rng.Uniform(3'000));
    opts.checkpoint_truncate_wal = true;

    FailpointConfig cfg;
    cfg.skip = static_cast<int>(rng.Uniform(3));
    cfg.status = Status::Unavailable("torture: injected checkpoint fault");

    // Crash thread: seal-and-copy at a random instant. The cut can land
    // mid-run, mid-checkpoint, mid-truncation, or after the driver is
    // already done (a crash at idle).
    CheckpointDaemon::CrashImage crash;
    std::thread crasher([&] {
      std::this_thread::sleep_for(
          std::chrono::microseconds(rng.Uniform(40'000)));
      crash = daemon->CaptureCrashImage();
    });

    DriverReport report;
    uint64_t fires = 0;
    {
      std::unique_ptr<ScopedFailpoint> armed;
      if (site != nullptr) armed = std::make_unique<ScopedFailpoint>(site, cfg);
      ConcurrentDriver driver(&bench, opts);
      report = driver.Run();
      if (site != nullptr) {
        fires = FailpointRegistry::Get().Find(site)->fires();
        fires_total += fires;
      }
    }
    crasher.join();

    // Per-worker ledger stays exact even when the cut seals the log
    // mid-run (commits after the seal fail, they do not vanish).
    for (const WorkerResult& w : report.workers) {
      EXPECT_EQ(w.stats.total() + w.failed, w.ops_issued);
    }

    CheckpointDaemon::Stats dstats = daemon->stats();
    if (dstats.written > 0) ++rounds_with_checkpoint;
    if (dstats.truncated_bytes > 0) ++rounds_truncated;
    if (fault == Fault::kTruncateError && fires > 0) {
      // A failed truncation keeps bytes; it never drops them.
      EXPECT_EQ(wal.truncated_bytes(), dstats.truncated_bytes);
    }

    // --- Recover from the cut, serial and parallel.
    Database::RecoveryReport rec_serial;
    auto recovered = Recover(crash, config, nullptr, &rec_serial);
    {
      auto recovered_par = Recover(crash, config, &pool, nullptr);
      auto a = Fingerprint(recovered.get());
      auto b = Fingerprint(recovered_par.get());
      for (const char* name : kTables) {
        EXPECT_EQ(a[name], b[name])
            << "serial and parallel recovery diverge in " << name;
      }
    }

    // Bounded tail: whatever the cut holds, the tail replayed on top of a
    // checkpoint cannot exceed the driver's committed transactions (plus
    // the merge/maintenance-free baseline of zero).
    EXPECT_LE(rec_serial.tail_txns,
              static_cast<size_t>(report.txns.total()) + 1);

    // Zero acked-commit loss: every acknowledged NewOrder survived the
    // crash, whether it came back from the image or the tail.
    const Table* orders = recovered->catalog()->GetTable("orders");
    std::set<std::tuple<int64_t, int64_t, int64_t>> acked;
    uint64_t committed_new_orders = 0;
    for (const WorkerResult& w : report.workers) {
      committed_new_orders += w.stats.new_order;
      for (const NewOrderAck& ack : w.acks) {
        EXPECT_TRUE(acked.emplace(ack.w, ack.d, ack.o_id).second)
            << "duplicate ack " << ack.w << "/" << ack.d << "/" << ack.o_id;
        Row key{Value::Int64(ack.w), Value::Int64(ack.d),
                Value::Int64(ack.o_id)};
        Row out;
        EXPECT_TRUE(orders->Lookup(EncodeKey(orders->schema(), key),
                                   kFarFuture, &out))
            << "acked order lost after crash: " << ack.w << "/" << ack.d
            << "/" << ack.o_id;
      }
    }
    EXPECT_EQ(acked.size(), committed_new_orders);

    // Zero unacked resurrection: the recovered counts are exactly the
    // load plus the acknowledged commits — nothing a torn image, torn
    // manifest, or truncation fault touched can reappear.
    EXPECT_EQ(CountVisibleRows(recovered.get(), "orders"),
              base_orders + static_cast<int64_t>(acked.size()));
    EXPECT_EQ(CountVisibleRows(recovered.get(), "history"),
              base_history + static_cast<int64_t>(report.txns.payment));
  }

  // The schedule really exercised the machinery: faults fired, rounds
  // checkpointed, and truncation actually dropped bytes somewhere. Only
  // asserted on full-length schedules — sanitizer CI runs a handful of
  // rounds under heavy slowdown, where the random crash cut can land
  // before any round completes a truncating checkpoint.
  if (rounds >= 15) {
    EXPECT_GT(fires_total, 0u);
    EXPECT_GT(rounds_with_checkpoint, 0u);
    EXPECT_GT(rounds_truncated, 0u);
  }
}

}  // namespace
}  // namespace oltap
