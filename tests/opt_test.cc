#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "opt/cardinality.h"
#include "opt/cost_model.h"
#include "opt/feedback.h"
#include "opt/join_order.h"
#include "opt/stats.h"
#include "sql/session.h"

namespace oltap {
namespace {

// ---------------------------------------------------------------------------
// DistinctSketch

TEST(DistinctSketchTest, ExactBelowK) {
  opt::DistinctSketch s;
  for (uint64_t i = 0; i < 500; ++i) s.Add(i * 0x9e3779b97f4a7c15ULL);
  EXPECT_EQ(s.Estimate(), 500u);
  // Duplicates do not inflate the count.
  for (uint64_t i = 0; i < 500; ++i) s.Add(i * 0x9e3779b97f4a7c15ULL);
  EXPECT_EQ(s.Estimate(), 500u);
}

TEST(DistinctSketchTest, EstimatesAboveK) {
  opt::DistinctSketch s;
  const uint64_t n = 50000;
  for (uint64_t i = 1; i <= n; ++i) s.Add(i * 0x9e3779b97f4a7c15ULL);
  uint64_t est = s.Estimate();
  // Bottom-k with k=1024 is well within 15% at this scale.
  EXPECT_GT(est, n * 85 / 100);
  EXPECT_LT(est, n * 115 / 100);
}

// ---------------------------------------------------------------------------
// ANALYZE / ColumnStats edge cases (through the SQL surface so the stats
// pass sees exactly what the engine stores).

class OptStatsTest : public ::testing::Test {
 protected:
  opt::TableStats Analyze(const std::string& table) {
    Table* t = db_.catalog()->GetTable(table);
    EXPECT_NE(t, nullptr);
    Timestamp ts = db_.txn_manager()->oracle()->CurrentReadTs();
    return opt::AnalyzeTable(*t, ts);
  }
  Database db_;
};

TEST_F(OptStatsTest, EmptyTable) {
  ASSERT_TRUE(
      db_.Execute("CREATE TABLE e (a BIGINT NOT NULL, b DOUBLE, "
                  "PRIMARY KEY (a)) FORMAT ROW")
          .ok());
  opt::TableStats st = Analyze("e");
  EXPECT_EQ(st.row_count, 0u);
  ASSERT_EQ(st.columns.size(), 2u);
  for (const auto& c : st.columns) {
    EXPECT_EQ(c.row_count, 0u);
    EXPECT_EQ(c.null_count, 0u);
    EXPECT_EQ(c.ndv, 0u);
    EXPECT_FALSE(c.has_range);
    EXPECT_TRUE(c.bounds.empty());
    EXPECT_DOUBLE_EQ(c.NullFraction(), 0.0);
  }
}

TEST_F(OptStatsTest, SingleRow) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE s1 (a BIGINT NOT NULL, b DOUBLE, "
                          "PRIMARY KEY (a)) FORMAT ROW")
                  .ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO s1 VALUES (7, 3.5)").ok());
  opt::TableStats st = Analyze("s1");
  EXPECT_EQ(st.row_count, 1u);
  const opt::ColumnStats& a = st.columns[0];
  EXPECT_EQ(a.ndv, 1u);
  EXPECT_TRUE(a.has_range);
  EXPECT_DOUBLE_EQ(a.min, 7.0);
  EXPECT_DOUBLE_EQ(a.max, 7.0);
}

TEST_F(OptStatsTest, AllNullColumn) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE an (a BIGINT NOT NULL, b DOUBLE, "
                          "PRIMARY KEY (a)) FORMAT ROW")
                  .ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        db_.Execute("INSERT INTO an VALUES (" + std::to_string(i) + ", NULL)")
            .ok());
  }
  opt::TableStats st = Analyze("an");
  const opt::ColumnStats& b = st.columns[1];
  EXPECT_EQ(b.row_count, 10u);
  EXPECT_EQ(b.null_count, 10u);
  EXPECT_EQ(b.ndv, 0u);
  EXPECT_FALSE(b.has_range);
  EXPECT_DOUBLE_EQ(b.NullFraction(), 1.0);
}

TEST_F(OptStatsTest, AllDistinctVersusSingleValue) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE dv (a BIGINT NOT NULL, b BIGINT, "
                          "PRIMARY KEY (a)) FORMAT ROW")
                  .ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db_.Execute("INSERT INTO dv VALUES (" + std::to_string(i) +
                            ", 42)")
                    .ok());
  }
  opt::TableStats st = Analyze("dv");
  EXPECT_EQ(st.columns[0].ndv, 100u);  // primary key: all distinct
  EXPECT_EQ(st.columns[1].ndv, 1u);    // constant column: one value
}

TEST_F(OptStatsTest, SkewedHistogramFractionBelow) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE zipf (a BIGINT NOT NULL, v BIGINT, "
                          "PRIMARY KEY (a)) FORMAT ROW")
                  .ok());
  // Zipf-ish skew: value v appears ~N/v times. 1 dominates.
  int key = 0;
  for (int v = 1; v <= 16; ++v) {
    int copies = 512 / v;
    for (int c = 0; c < copies; ++c) {
      ASSERT_TRUE(db_.Execute("INSERT INTO zipf VALUES (" +
                              std::to_string(key++) + ", " +
                              std::to_string(v) + ")")
                      .ok());
    }
  }
  opt::TableStats st = Analyze("zipf");
  const opt::ColumnStats& v = st.columns[1];
  ASSERT_TRUE(v.has_range);
  EXPECT_DOUBLE_EQ(v.min, 1.0);
  EXPECT_DOUBLE_EQ(v.max, 16.0);
  ASSERT_FALSE(v.bounds.empty());
  // v=1 holds ~30% of the rows; an equi-depth histogram must put the
  // fraction below-or-equal 1 far above the uniform guess (1/16).
  double fle1 = v.FractionBelow(1.0, /*inclusive=*/true);
  EXPECT_GT(fle1, 0.2);
  // FractionBelow is monotone and bounded.
  double prev = 0.0;
  for (double c = 0.0; c <= 17.0; c += 1.0) {
    double f = v.FractionBelow(c, true);
    EXPECT_GE(f, prev - 1e-9);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
  EXPECT_DOUBLE_EQ(v.FractionBelow(0.5, true), 0.0);
  EXPECT_DOUBLE_EQ(v.FractionBelow(16.5, true), 1.0);
}

// ---------------------------------------------------------------------------
// Cardinality estimation

TEST(CardinalityTest, DefaultsWithoutStats) {
  opt::CardinalityEstimator ce(nullptr, 1000.0);
  ExprPtr eq = Expr::Compare(CompareOp::kEq, Expr::Column(0, ValueType::kInt64),
                             Expr::Constant(Value::Int64(5)));
  EXPECT_DOUBLE_EQ(ce.Selectivity(eq), opt::defaults::kEqSelectivity);
  ExprPtr lt = Expr::Compare(CompareOp::kLt, Expr::Column(0, ValueType::kInt64),
                             Expr::Constant(Value::Int64(5)));
  EXPECT_DOUBLE_EQ(ce.Selectivity(lt), opt::defaults::kRangeSelectivity);
  EXPECT_DOUBLE_EQ(ce.EstimateRows(nullptr), 1000.0);
  // Conjunction multiplies.
  EXPECT_NEAR(ce.Selectivity(Expr::And(eq, lt)),
              opt::defaults::kEqSelectivity * opt::defaults::kRangeSelectivity,
              1e-12);
}

TEST(CardinalityTest, EqualityUsesNdv) {
  opt::TableStats st;
  st.row_count = 1000;
  opt::ColumnStats c;
  c.row_count = 1000;
  c.ndv = 50;
  st.columns.push_back(c);
  opt::CardinalityEstimator ce(&st, 1000.0);
  ExprPtr eq = Expr::Compare(CompareOp::kEq, Expr::Column(0, ValueType::kInt64),
                             Expr::Constant(Value::Int64(5)));
  EXPECT_NEAR(ce.EstimateRows(eq), 1000.0 / 50.0, 1.0);
}

TEST(CardinalityTest, EquiJoinSelectivityContainment) {
  opt::TableStats l, r;
  opt::ColumnStats lc, rc;
  lc.ndv = 100;
  rc.ndv = 10;
  l.columns.push_back(lc);
  r.columns.push_back(rc);
  // 1 / max(NDV) = 1/100.
  EXPECT_NEAR(opt::EquiJoinSelectivity(&l, 0, 1000, &r, 0, 50), 0.01, 1e-9);
  // Missing stats: row counts stand in for NDV.
  EXPECT_NEAR(opt::EquiJoinSelectivity(nullptr, 0, 1000, nullptr, 0, 50),
              1.0 / 1000.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Cost model

TEST(CostModelTest, HashJoinCostScalesWithInputs) {
  opt::CostModel cm;
  auto small = cm.CostHashJoin(10, 1000, 100);
  auto big = cm.CostHashJoin(1000, 10, 100);
  // Building on the small side is cheaper (build is the expensive phase).
  EXPECT_LT(small.cost, big.cost);
  EXPECT_GT(big.build_bytes, small.build_bytes);
}

class OptCostScanTest : public ::testing::Test {
 protected:
  Database db_;
};

TEST_F(OptCostScanTest, DualTablePrefersColumnForWideScan) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE d (a BIGINT NOT NULL, b BIGINT, "
                          "PRIMARY KEY (a)) FORMAT DUAL")
                  .ok());
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(db_.Execute("INSERT INTO d VALUES (" + std::to_string(i) +
                            ", " + std::to_string(i % 4) + ")")
                    .ok());
  }
  // Merge delta into main: an unmerged dual table is all row-wise delta,
  // where the row mirror is (correctly) priced cheaper.
  db_.MergeAll();
  Table* t = db_.catalog()->GetTable("d");
  ASSERT_NE(t, nullptr);
  Timestamp ts = db_.txn_manager()->oracle()->CurrentReadTs();
  opt::CostModel cm;
  // Full scan with most rows surviving: the columnar kernel wins the scan
  // but pays the gather per output row; either way the decision must be
  // deterministic and costs positive.
  auto d1 = cm.CostScan(*t, ts, {}, 64.0);
  auto d2 = cm.CostScan(*t, ts, {}, 64.0);
  EXPECT_EQ(d1.path, d2.path);
  EXPECT_DOUBLE_EQ(d1.cost, d2.cost);
  EXPECT_GT(d1.cost, 0.0);
  // A selective scan (1 of 64 rows out) favors the column mirror: the
  // packed kernel visits all rows cheaply and gathers almost nothing.
  auto sel = cm.CostScan(*t, ts, {}, 1.0);
  EXPECT_EQ(sel.path, opt::AccessPath::kColumn);
  // A scan emitting every row pays gather per row on the column side; the
  // row mirror must price in as the cheaper option at high output ratios
  // only if gather dominates — assert the ordering is consistent with the
  // model constants rather than a fixed side.
  double n = 64.0;
  double col_full = n * opt::CostModel::kColumnScanPerRow +
                    n * opt::CostModel::kGatherPerRow;
  double row_full = n * opt::CostModel::kRowScanPerRow;
  if (col_full < row_full) {
    EXPECT_EQ(d1.path, opt::AccessPath::kColumn);
  } else {
    EXPECT_EQ(d1.path, opt::AccessPath::kRow);
  }
}

// ---------------------------------------------------------------------------
// Join ordering

TEST(JoinOrderTest, SingleAndEmpty) {
  opt::CostModel cm;
  opt::JoinGraph g0;
  auto r0 = opt::OrderJoins(g0, cm);
  EXPECT_TRUE(r0.order.empty());
  opt::JoinGraph g1;
  g1.rel_rows = {42.0};
  auto r1 = opt::OrderJoins(g1, cm);
  ASSERT_EQ(r1.order.size(), 1u);
  EXPECT_EQ(r1.order[0], 0);
  EXPECT_DOUBLE_EQ(r1.total_cost, 0.0);
}

TEST(JoinOrderTest, SmallRelationJoinsFirst) {
  // Chain a - b - c with a huge, c tiny: the cheap plan starts from the
  // small end, not FROM order.
  opt::CostModel cm;
  opt::JoinGraph g;
  g.rel_rows = {100000.0, 1000.0, 10.0};
  g.edges = {{0, 1, 1.0 / 1000.0}, {1, 2, 1.0 / 1000.0}};
  auto r = opt::OrderJoins(g, cm);
  ASSERT_EQ(r.order.size(), 3u);
  EXPECT_TRUE(r.used_dp);
  // The large relation must come last: any prefix containing 0 early
  // carries ~100k-row intermediates.
  EXPECT_EQ(r.order.back(), 0);
  ASSERT_EQ(r.interm_rows.size(), 3u);
  EXPECT_GT(r.total_cost, 0.0);
}

TEST(JoinOrderTest, DeterministicTieBreakIsFromOrder) {
  // Fully symmetric: identical cardinalities, identical edges. FROM order
  // must win the tie, and repeated runs must agree.
  opt::CostModel cm;
  opt::JoinGraph g;
  g.rel_rows = {100.0, 100.0, 100.0};
  g.edges = {{0, 1, 0.01}, {1, 2, 0.01}, {0, 2, 0.01}};
  auto r1 = opt::OrderJoins(g, cm);
  auto r2 = opt::OrderJoins(g, cm);
  EXPECT_EQ(r1.order, r2.order);
  EXPECT_EQ(r1.order, (std::vector<int>{0, 1, 2}));
}

TEST(JoinOrderTest, GreedyFallbackAboveDpLimit) {
  opt::CostModel cm;
  opt::JoinGraph g;
  const int n = opt::kDpMaxRelations + 2;
  for (int i = 0; i < n; ++i) {
    g.rel_rows.push_back(100.0 + i);
    if (i > 0) g.edges.push_back({i - 1, i, 0.01});
  }
  auto r = opt::OrderJoins(g, cm);
  EXPECT_FALSE(r.used_dp);
  ASSERT_EQ(r.order.size(), static_cast<size_t>(n));
  // Every relation appears exactly once.
  std::vector<int> sorted = r.order;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < n; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(JoinOrderTest, AvoidsCrossProductWhenConnectedOrderExists) {
  // Star: 0 joins 1 and 2; 1-2 have no edge. Any valid order must place 0
  // before both spokes are joined to each other, i.e. never start {1,2}.
  opt::CostModel cm;
  opt::JoinGraph g;
  g.rel_rows = {50.0, 1000.0, 1000.0};
  g.edges = {{0, 1, 0.001}, {0, 2, 0.001}};
  auto r = opt::OrderJoins(g, cm);
  ASSERT_EQ(r.order.size(), 3u);
  // First two relations in the order must share an edge.
  int a = r.order[0], b = r.order[1];
  EXPECT_TRUE((a == 0) || (b == 0)) << "cross product {1,2} chosen first";
}

// ---------------------------------------------------------------------------
// Feedback

TEST(FeedbackTest, ObserveBelowThresholdKeepsOrder) {
  opt::PlanFeedback fb;
  fb.RememberOrder("q1", {1, 0});
  std::vector<opt::OpSample> samples = {{100.0, 90.0, 0}, {50.0, 60.0, -1}};
  double q = fb.Observe("q1", samples);
  EXPECT_LT(q, opt::kQErrorReplanThreshold);
  auto e = fb.Lookup("q1");
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->order, (std::vector<int>{1, 0}));
  EXPECT_FALSE(e->has_actuals);
}

TEST(FeedbackTest, ObserveAboveThresholdInvalidatesAndStashesActuals) {
  opt::PlanFeedback fb;
  fb.RememberOrder("q2", {0, 1});
  // Scan 1's estimate is off by 100x.
  std::vector<opt::OpSample> samples = {{1000.0, 1000.0, 0},
                                        {10.0, 1000.0, 1}};
  double q = fb.Observe("q2", samples);
  EXPECT_GE(q, opt::kQErrorReplanThreshold);
  auto e = fb.Lookup("q2");
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(e->order.empty()) << "stale order must be invalidated";
  EXPECT_TRUE(e->has_actuals);
  ASSERT_GE(e->scan_actual_rows.size(), 2u);
  EXPECT_DOUBLE_EQ(e->scan_actual_rows[1], 1000.0);
}

TEST(FeedbackTest, UnestimatedSamplesAreNeutral) {
  opt::PlanFeedback fb;
  std::vector<opt::OpSample> samples = {{-1.0, 500.0, -1}};
  EXPECT_DOUBLE_EQ(fb.Observe("q3", samples), 1.0);
}

// ---------------------------------------------------------------------------
// SQL surface: ANALYZE, SET optimizer, EXPLAIN annotations, SHOW STATS.

class OptSqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Execute("CREATE TABLE big (id BIGINT NOT NULL, k BIGINT, "
                            "PRIMARY KEY (id)) FORMAT COLUMN")
                    .ok());
    ASSERT_TRUE(db_.Execute("CREATE TABLE small (k BIGINT NOT NULL, tag TEXT, "
                            "PRIMARY KEY (k)) FORMAT COLUMN")
                    .ok());
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(db_.Execute("INSERT INTO big VALUES (" + std::to_string(i) +
                              ", " + std::to_string(i % 5) + ")")
                      .ok());
    }
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(db_.Execute("INSERT INTO small VALUES (" +
                              std::to_string(i) + ", 't" + std::to_string(i) +
                              "')")
                      .ok());
    }
  }

  std::string Explain(const std::string& sql) {
    auto r = db_.Execute("EXPLAIN " + sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    std::string out;
    for (const Row& row : r->rows) out += row[0].AsString() + "\n";
    return out;
  }

  Database db_;
};

TEST_F(OptSqlTest, AnalyzeReturnsRowCounts) {
  auto r = db_.Execute("ANALYZE big");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->columns, (std::vector<std::string>{"table", "rows"}));
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsString(), "big");
  EXPECT_EQ(r->rows[0][1].AsInt64(), 200);
  // Bare ANALYZE covers every table.
  auto all = db_.Execute("ANALYZE");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->rows.size(), 2u);
  // Unknown table errors.
  EXPECT_FALSE(db_.Execute("ANALYZE nope").ok());
}

TEST_F(OptSqlTest, ExplainCarriesEstimatesWhenOptimized) {
  ASSERT_TRUE(db_.Execute("ANALYZE").ok());
  std::string on = Explain("SELECT * FROM big WHERE k = 3");
  EXPECT_NE(on.find("est_rows="), std::string::npos) << on;
  EXPECT_NE(on.find("cost="), std::string::npos) << on;
}

TEST_F(OptSqlTest, SetOptimizerOffRestoresLegacyExplainByteForByte) {
  ASSERT_TRUE(db_.Execute("ANALYZE").ok());
  const std::string q =
      "SELECT big.id, small.tag FROM big JOIN small ON big.k = small.k "
      "WHERE big.id < 50";
  std::string on = Explain(q);
  ASSERT_TRUE(db_.Execute("SET optimizer = off").ok());
  std::string off = Explain(q);
  // Off-mode output carries no optimizer annotations at all.
  EXPECT_EQ(off.find("est_rows="), std::string::npos) << off;
  EXPECT_EQ(off.find("cost="), std::string::npos) << off;
  EXPECT_EQ(off.find("path="), std::string::npos) << off;
  // Both modes return identical results.
  ASSERT_TRUE(db_.Execute("SET optimizer = on").ok());
  auto r_on = db_.Execute(q + " ORDER BY big.id");
  ASSERT_TRUE(db_.Execute("SET optimizer = off").ok());
  auto r_off = db_.Execute(q + " ORDER BY big.id");
  ASSERT_TRUE(r_on.ok());
  ASSERT_TRUE(r_off.ok());
  ASSERT_EQ(r_on->rows.size(), r_off->rows.size());
  for (size_t i = 0; i < r_on->rows.size(); ++i) {
    for (size_t j = 0; j < r_on->rows[i].size(); ++j) {
      EXPECT_EQ(r_on->rows[i][j].ToString(), r_off->rows[i][j].ToString());
    }
  }
  // Bad knob values are rejected.
  EXPECT_FALSE(db_.Execute("SET optimizer = sideways").ok());
  EXPECT_FALSE(db_.Execute("SET banana = on").ok());
}

TEST_F(OptSqlTest, OptimizerReordersJoinToSmallBuildSide) {
  ASSERT_TRUE(db_.Execute("ANALYZE").ok());
  // FROM order puts `big` first; the cost-based order builds on `small`.
  std::string plan = Explain(
      "SELECT big.id FROM big JOIN small ON big.k = small.k");
  size_t scan_small = plan.find("Scan(small");
  size_t scan_big = plan.find("Scan(big");
  ASSERT_NE(scan_small, std::string::npos) << plan;
  ASSERT_NE(scan_big, std::string::npos) << plan;
  // EXPLAIN prints the build (left) child before the probe child; the
  // small relation must be the build side.
  EXPECT_LT(scan_small, scan_big) << plan;
}

TEST_F(OptSqlTest, ShowStatsSurfacesFreshness) {
  ASSERT_TRUE(db_.Execute("ANALYZE big").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO big VALUES (1000, 1)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO big VALUES (1001, 2)").ok());
  auto r = db_.Execute("SHOW STATS");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::map<std::string, int64_t> m;
  for (const Row& row : r->rows) {
    if (row[1].type() == ValueType::kInt64 && !row[1].is_null()) {
      m[row[0].AsString()] = row[1].AsInt64();
    }
  }
  ASSERT_TRUE(m.count("stats.big.rows"));
  EXPECT_EQ(m["stats.big.rows"], 200);
  ASSERT_TRUE(m.count("stats.big.mods_since_analyze"));
  EXPECT_EQ(m["stats.big.mods_since_analyze"], 2);
  // Never-analyzed tables do not appear.
  EXPECT_FALSE(m.count("stats.small.rows"));
}

TEST_F(OptSqlTest, ExplainAnalyzeShowsEstimateVersusActual) {
  ASSERT_TRUE(db_.Execute("ANALYZE").ok());
  auto r = db_.Execute("EXPLAIN ANALYZE SELECT * FROM big WHERE k = 3");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->columns,
            (std::vector<std::string>{"operator", "est_rows", "rows",
                                      "batches", "time_ms"}));
  bool saw_estimated_scan = false;
  for (const Row& row : r->rows) {
    if (row[0].AsString().find("Scan(big") == std::string::npos) continue;
    saw_estimated_scan = !row[1].is_null();
    // k has 5 distinct values over 200 rows: the estimate should be close
    // to the actual 40.
    EXPECT_NEAR(static_cast<double>(row[1].AsInt64()),
                static_cast<double>(row[2].AsInt64()), 20.0);
  }
  EXPECT_TRUE(saw_estimated_scan);
}

TEST_F(OptSqlTest, FeedbackInvalidatesBadPlans) {
  // No ANALYZE: the planner runs on defaults and misestimates the
  // selective scan badly enough to cross the q-error threshold.
  const std::string q =
      "SELECT big.id FROM big JOIN small ON big.k = small.k";
  auto r1 = db_.Execute(q);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_GE(db_.plan_feedback()->size(), 1u);
  // Re-running still succeeds and returns the same rows (re-plan path).
  auto r2 = db_.Execute(q);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r1->rows.size(), r2->rows.size());
}

}  // namespace
}  // namespace oltap
