#include "txn/checkpoint_daemon.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "failpoint_fixture.h"
#include "sched/merge_daemon.h"
#include "sql/session.h"
#include "txn/checkpoint.h"
#include "txn/log_writer.h"

namespace oltap {
namespace {

constexpr char kCreateSql[] =
    "CREATE TABLE t (id BIGINT NOT NULL, tag TEXT, v DOUBLE, "
    "PRIMARY KEY (id)) FORMAT COLUMN";

void InsertRange(Database* db, int64_t lo, int64_t hi) {
  for (int64_t i = lo; i < hi; ++i) {
    ASSERT_TRUE(db->Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                            ", 'd', 1.0)")
                    .ok());
  }
}

int64_t CountRows(Database* db) {
  auto r = db->Execute("SELECT COUNT(*) FROM t");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? r->rows[0][0].AsInt64() : -1;
}

class CheckpointDaemonTest : public FailpointTest {};

TEST_F(CheckpointDaemonTest, CheckpointNowBuildsChainAndManifest) {
  Wal wal;
  Database db(&wal);
  ASSERT_TRUE(db.Execute(kCreateSql).ok());
  InsertRange(&db, 0, 50);

  CheckpointDaemon* d = db.EnsureCheckpointer();
  auto r1 = d->CheckpointNow();
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1->id, 1u);
  EXPECT_GT(r1->ts, 0u);
  EXPECT_GT(r1->bytes, 0u);
  EXPECT_EQ(d->last_checkpoint_ts(), r1->ts);

  InsertRange(&db, 50, 80);
  auto r2 = d->CheckpointNow();
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->id, 2u);
  EXPECT_GT(r2->ts, r1->ts);

  // The default chain keeps two images; a third round evicts the oldest.
  InsertRange(&db, 80, 90);
  auto r3 = d->CheckpointNow();
  ASSERT_TRUE(r3.ok());

  CheckpointStore store = d->StoreCopy();
  ASSERT_EQ(store.images.size(), 2u);
  EXPECT_EQ(store.images[0].id, 2u);  // oldest first
  EXPECT_EQ(store.images[1].id, 3u);
  auto manifest = ParseManifest(store.manifest);
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  ASSERT_EQ(manifest->size(), 2u);
  for (size_t i = 0; i < manifest->size(); ++i) {
    EXPECT_EQ((*manifest)[i].id, store.images[i].id);
    EXPECT_EQ((*manifest)[i].checksum,
              CheckpointChecksum(store.images[i].data));
    EXPECT_EQ((*manifest)[i].bytes, store.images[i].data.size());
  }
  EXPECT_EQ(d->stats().written, 3u);
}

TEST_F(CheckpointDaemonTest, TruncatesWalSegmentsBelowCheckpoint) {
  Wal::Options wopts;
  wopts.segment_bytes = 256;
  Wal wal(wopts);
  Database db(&wal);
  ASSERT_TRUE(db.Execute(kCreateSql).ok());
  InsertRange(&db, 0, 200);
  ASSERT_GT(wal.num_segments(), 3u);
  const uint64_t before = wal.size();

  CheckpointDaemon* d = db.EnsureCheckpointer();
  auto r = d->CheckpointNow();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->wal_truncated, 0u);
  EXPECT_LT(wal.size(), before);
  EXPECT_EQ(d->stats().truncated_bytes, r->wal_truncated);

  // Checkpoint + retained tail is still a complete recovery story.
  Database recovered;
  auto report = recovered.RecoverFromCheckpointStore(d->StoreCopy(),
                                                     wal.buffer());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->checkpoint_ts, r->ts);
  EXPECT_EQ(report->fallbacks, 0u);
  EXPECT_EQ(CountRows(&recovered), 200);
}

// Regression: a checkpoint whose snapshot predates the first commit
// (ts 0 — the database holds only bulk-loaded state, which bypasses the
// WAL and never advances the watermark) stamps its data section at ts 0.
// The replay-based restore used to skip those records because
// skip_through_ts=0 was treated as "already covered", recovering an
// empty database; the live tail then failed against missing rows.
TEST_F(CheckpointDaemonTest, TimestampZeroCheckpointRestoresBulkLoadedState) {
  Wal wal;
  Database db(&wal);
  ASSERT_TRUE(db.Execute(kCreateSql).ok());
  Table* t = db.catalog()->GetTable("t");
  std::vector<Row> rows;
  for (int64_t i = 0; i < 64; ++i) {
    rows.push_back(
        Row{Value::Int64(i), Value::String("bulk"), Value::Double(1.0)});
  }
  ASSERT_TRUE(t->BulkLoadToMain(rows, 0).ok());

  CheckpointDaemon* d = db.EnsureCheckpointer();
  auto r = d->CheckpointNow();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->ts, 0u);

  // Commits after the ts-0 image land in the tail.
  InsertRange(&db, 64, 72);

  Database recovered;
  auto report = recovered.RecoverFromCheckpointStore(d->StoreCopy(),
                                                     wal.buffer());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->checkpoint_ts, 0u);
  EXPECT_EQ(CountRows(&recovered), 72);
}

TEST_F(CheckpointDaemonTest, ActiveSnapshotPinsTruncationHorizon) {
  Wal::Options wopts;
  wopts.segment_bytes = 256;
  Wal wal(wopts);
  Database db(&wal);
  ASSERT_TRUE(db.Execute(kCreateSql).ok());

  // An analytical reader opens a snapshot before any data lands. Until it
  // closes, every segment's high-water mark is above the pinned horizon.
  std::unique_ptr<Transaction> reader = db.txn_manager()->Begin();
  InsertRange(&db, 0, 200);
  const uint64_t before = wal.size();

  CheckpointDaemon* d = db.EnsureCheckpointer();
  auto r = d->CheckpointNow();
  ASSERT_TRUE(r.ok());
  EXPECT_LE(d->PinnedHorizon(), reader->begin_ts());
  EXPECT_EQ(r->wal_truncated, 0u);
  EXPECT_EQ(wal.size(), before);

  // Release the pin: the next round truncates.
  db.txn_manager()->Abort(reader.get());
  reader.reset();
  auto r2 = d->CheckpointNow();
  ASSERT_TRUE(r2.ok());
  EXPECT_GT(r2->wal_truncated, 0u);
}

TEST_F(CheckpointDaemonTest, UnackedGroupCommitBatchPinsHorizon) {
  Wal wal;
  Database db(&wal);
  ASSERT_TRUE(db.Execute(kCreateSql).ok());
  InsertRange(&db, 0, 10);

  // A writer with a long persist interval holds a submitted-but-unacked
  // batch; its commit timestamp must bound the horizon so no truncation
  // outruns an acknowledgement that never happened.
  LogWriter::Options lw_opts;
  lw_opts.max_batch = 64;
  lw_opts.persist_interval_us = 2'000'000;
  LogWriter writer(&wal, lw_opts);
  db.txn_manager()->SetLogWriter(&writer);

  const Timestamp pending_ts = 5;  // below every live timestamp
  std::future<Status> pending = writer.SubmitCommit(Wal::SerializeCommitBody(
      99, pending_ts,
      {WalOp{WalOp::kInsert, "t", "",
             Row{Value::Int64(999), Value::String("p"),
                 Value::Double(0.0)}}}));
  ASSERT_EQ(writer.MinPendingCommitTs(), pending_ts);

  CheckpointDaemon* d = db.EnsureCheckpointer();
  auto r = d->CheckpointNow();
  ASSERT_TRUE(r.ok());
  EXPECT_LE(d->PinnedHorizon(), pending_ts);

  writer.Stop();
  EXPECT_TRUE(pending.get().ok());
  db.txn_manager()->SetLogWriter(nullptr);
}

TEST_F(CheckpointDaemonTest, TornImageNeverEndorsedAndRecoveryFallsBack) {
  Wal wal;
  Database db(&wal);
  ASSERT_TRUE(db.Execute(kCreateSql).ok());
  InsertRange(&db, 0, 40);

  CheckpointDaemon* d = db.EnsureCheckpointer();
  ASSERT_TRUE(d->CheckpointNow().ok());

  InsertRange(&db, 40, 60);
  {
    FailpointConfig cfg;
    ScopedFailpoint armed("checkpoint.write.torn", cfg);
    auto r = d->CheckpointNow();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  }
  EXPECT_EQ(d->stats().written, 1u);
  EXPECT_EQ(d->stats().failed, 1u);

  // The torn bytes sit in the chain, but the manifest only endorses the
  // first image, and recovery lands on it — replaying the longer tail.
  CheckpointStore store = d->StoreCopy();
  ASSERT_EQ(store.images.size(), 2u);
  EXPECT_FALSE(CheckpointIsValid(store.images[1].data));
  auto manifest = ParseManifest(store.manifest);
  ASSERT_TRUE(manifest.ok());
  ASSERT_EQ(manifest->size(), 1u);
  EXPECT_EQ((*manifest)[0].id, store.images[0].id);

  Database recovered;
  auto report = recovered.RecoverFromCheckpointStore(store, wal.buffer());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->checkpoint_id, store.images[0].id);
  EXPECT_EQ(CountRows(&recovered), 60);
}

TEST_F(CheckpointDaemonTest, TornManifestFallsBackToImageScanOnRecovery) {
  Wal wal;
  Database db(&wal);
  ASSERT_TRUE(db.Execute(kCreateSql).ok());
  InsertRange(&db, 0, 30);

  CheckpointDaemon* d = db.EnsureCheckpointer();
  ASSERT_TRUE(d->CheckpointNow().ok());
  InsertRange(&db, 30, 50);
  {
    FailpointConfig cfg;
    ScopedFailpoint armed("checkpoint.manifest.torn", cfg);
    auto r = d->CheckpointNow();
    ASSERT_FALSE(r.ok());
  }

  CheckpointStore store = d->StoreCopy();
  EXPECT_FALSE(ParseManifest(store.manifest).ok());
  // Both images are intact; the scan path picks the newest.
  Database recovered;
  auto report = recovered.RecoverFromCheckpointStore(store, wal.buffer());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->fallbacks, 1u);
  EXPECT_EQ(report->checkpoint_id, store.images.back().id);
  EXPECT_EQ(CountRows(&recovered), 50);
}

TEST_F(CheckpointDaemonTest, DaemonCrashStopsThreadAndRestartRevives) {
  Wal wal;
  Database db(&wal);
  ASSERT_TRUE(db.Execute(kCreateSql).ok());
  InsertRange(&db, 0, 10);

  CheckpointDaemon* d = db.EnsureCheckpointer();
  d->set_interval_us(1'000);
  {
    FailpointConfig cfg;
    ScopedFailpoint armed("checkpoint.daemon.crash", cfg);
    d->Start();
    for (int i = 0; i < 1000 && d->running(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_FALSE(d->running());
    EXPECT_EQ(d->stats().crashes, 1u);
  }
  // While dead, explicit rounds still work (CHECKPOINT does not need the
  // thread), and Restart() brings the daemon back.
  EXPECT_TRUE(d->CheckpointNow().ok());
  ASSERT_TRUE(d->Restart().ok());
  EXPECT_TRUE(d->running());
  uint64_t base = d->stats().written;
  for (int i = 0; i < 2000 && d->stats().written == base; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(d->stats().written, base);
  d->Stop();
  EXPECT_FALSE(d->running());
}

TEST_F(CheckpointDaemonTest, WalByteTriggerFiresWithoutInterval) {
  Wal wal;
  Database db(&wal);
  ASSERT_TRUE(db.Execute(kCreateSql).ok());

  CheckpointDaemon* d = db.EnsureCheckpointer();
  d->set_interval_us(0);  // time trigger off
  d->set_wal_trigger_bytes(512);
  d->Start();
  InsertRange(&db, 0, 200);
  for (int i = 0; i < 2000 && d->stats().written == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  d->Stop();
  EXPECT_GT(d->stats().written, 0u);
}

TEST_F(CheckpointDaemonTest, RecoveryRebuildsViewsFromCarriedDdl) {
  Wal wal;
  Database db(&wal);
  ASSERT_TRUE(db.Execute(kCreateSql).ok());
  InsertRange(&db, 0, 40);
  ASSERT_TRUE(db.Execute("CREATE MATERIALIZED VIEW agg AS "
                         "SELECT tag, COUNT(*) AS n, SUM(v) AS s "
                         "FROM t GROUP BY tag")
                  .ok());
  CheckpointDaemon* d = db.EnsureCheckpointer();
  ASSERT_TRUE(d->CheckpointNow().ok());
  InsertRange(&db, 40, 70);  // tail beyond the checkpoint

  CheckpointDaemon::CrashImage crash = d->CaptureCrashImage();

  Database recovered;
  auto report = recovered.RecoverFromCheckpointStore(crash.store, crash.wal);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->tail_txns, 0u);
  ASSERT_TRUE(recovered.view_manager()->IsView("agg"));

  auto want = db.Execute("SELECT n, s FROM agg");
  auto got = recovered.Execute("SELECT n, s FROM agg");
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->rows.size(), want->rows.size());
  EXPECT_EQ(got->rows[0][0].AsInt64(), want->rows[0][0].AsInt64());
  EXPECT_DOUBLE_EQ(got->rows[0][1].AsDouble(), want->rows[0][1].AsDouble());
}

// Satellite: a slow checkpoint must not dam up the delta store. The pin
// blocks version GC below the checkpoint timestamp, but merges keep
// folding delta rows into the main, so the delta stays bounded while the
// checkpoint scan crawls.
TEST_F(CheckpointDaemonTest, DeltaStaysBoundedDuringSlowCheckpoint) {
  Wal wal;
  Database db(&wal);
  ASSERT_TRUE(db.Execute(kCreateSql).ok());
  ASSERT_TRUE(db.Execute("CREATE MATERIALIZED VIEW agg DEFERRED AS "
                         "SELECT tag, COUNT(*) AS n FROM t GROUP BY tag")
                  .ok());
  InsertRange(&db, 0, 100);

  MergeDaemon::Options mopts;
  mopts.delta_row_threshold = 1;
  mopts.autostart = false;
  MergeDaemon merger(db.catalog(), db.txn_manager(), mopts);
  merger.set_view_manager(db.view_manager());

  FailpointConfig stall;
  stall.max_fires = 0;  // every table scan sleeps
  ScopedFailpoint armed("checkpoint.scan.stall", stall);

  CheckpointDaemon* d = db.EnsureCheckpointer();
  std::thread ckpt([&] { ASSERT_TRUE(d->CheckpointNow().ok()); });

  // Live DML + merge ticks while the checkpoint crawls. Track the worst
  // delta the merge policy ever leaves behind after a tick.
  size_t max_delta_after_merge = 0;
  int64_t next = 100;
  for (int round = 0; round < 20; ++round) {
    InsertRange(&db, next, next + 50);
    next += 50;
    merger.RunOnce();
    Table* t = db.catalog()->GetTable("t");
    max_delta_after_merge =
        std::max(max_delta_after_merge, t->column_table()->delta_size());
  }
  ckpt.join();

  // 1000 rows landed during the checkpoint; a dammed-up delta would hold
  // all of them. Merged-and-bounded means each tick drained its backlog.
  EXPECT_LT(max_delta_after_merge, 200u);
  // View maintenance also progressed under the checkpoint pin.
  auto r = db.Execute("SELECT n FROM agg");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt64(), next);
  // And the checkpoint itself is consistent: it restores exactly the rows
  // visible at its timestamp.
  CheckpointStore store = d->StoreCopy();
  Database restored;
  auto report = restored.RecoverFromCheckpointStore(store, "");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_LE(CountRows(&restored), next);
  EXPECT_GE(CountRows(&restored), 100);
}

// --- SQL surface ----------------------------------------------------------

TEST_F(CheckpointDaemonTest, CheckpointStatementRunsSynchronousRound) {
  Wal wal;
  Database db(&wal);
  ASSERT_TRUE(db.Execute(kCreateSql).ok());
  InsertRange(&db, 0, 20);

  auto r = db.Execute("CHECKPOINT");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->columns,
            (std::vector<std::string>{"checkpoint_id", "ts", "bytes",
                                      "wal_truncated"}));
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsInt64(), 1);
  EXPECT_GT(r->rows[0][1].AsInt64(), 0);
  EXPECT_GT(r->rows[0][2].AsInt64(), 0);
  ASSERT_NE(db.checkpointer(), nullptr);
  EXPECT_EQ(db.checkpointer()->stats().written, 1u);

  // A second round extends the chain.
  auto r2 = db.Execute("CHECKPOINT");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->rows[0][0].AsInt64(), 2);
}

TEST_F(CheckpointDaemonTest, SetKnobsControlDaemonAndSegmentation) {
  Wal wal;
  Database db(&wal);
  ASSERT_TRUE(db.Execute(kCreateSql).ok());

  ASSERT_TRUE(db.Execute("SET checkpoint_interval_us = '5000'").ok());
  ASSERT_NE(db.checkpointer(), nullptr);
  EXPECT_TRUE(db.checkpointer()->running());
  EXPECT_EQ(db.checkpointer()->interval_us(), 5000);

  ASSERT_TRUE(db.Execute("SET checkpoint_interval_us = 'off'").ok());
  EXPECT_FALSE(db.checkpointer()->running());

  ASSERT_TRUE(db.Execute("SET wal_segment_bytes = '128'").ok());
  InsertRange(&db, 0, 50);
  EXPECT_GT(wal.num_segments(), 1u);

  // Without a WAL there is nothing to segment.
  Database diskless;
  EXPECT_FALSE(diskless.Execute("SET wal_segment_bytes = '128'").ok());
}

TEST_F(CheckpointDaemonTest, ShowStatsExposesCheckpointAndWalRows) {
  Wal wal;
  Database db(&wal);
  ASSERT_TRUE(db.Execute(kCreateSql).ok());
  InsertRange(&db, 0, 20);
  ASSERT_TRUE(db.Execute("CHECKPOINT").ok());

  auto r = db.Execute("SHOW STATS");
  ASSERT_TRUE(r.ok());
  std::map<std::string, Value> by_name;
  for (const Row& row : r->rows) by_name[row[0].AsString()] = row[1];
  for (const char* name :
       {"ckpt.written", "ckpt.failed", "ckpt.fallbacks", "ckpt.age_us",
        "ckpt.last_ts", "ckpt.duration_us.count", "wal.segments",
        "wal.retained_bytes", "wal.truncated_bytes"}) {
    EXPECT_TRUE(by_name.count(name)) << "missing metric: " << name;
  }
#ifndef OLTAP_OBS_DISABLED
  EXPECT_GE(by_name["ckpt.age_us"].AsInt64(), 0);
  EXPECT_GT(by_name["ckpt.last_ts"].AsInt64(), 0);
  EXPECT_EQ(by_name["wal.retained_bytes"].AsInt64(),
            static_cast<int64_t>(wal.size()));
#endif
}

}  // namespace
}  // namespace oltap
