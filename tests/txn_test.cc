#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "storage/catalog.h"
#include "txn/transaction_manager.h"

namespace oltap {
namespace {

class TxnTest : public ::testing::TestWithParam<TableFormat> {
 protected:
  void SetUp() override {
    Schema schema = SchemaBuilder()
                        .AddInt64("id", false)
                        .AddInt64("v")
                        .SetKey({"id"})
                        .Build();
    ASSERT_TRUE(catalog_.CreateTable("t", schema, GetParam()).ok());
    table_ = catalog_.GetTable("t");
    tm_ = std::make_unique<TransactionManager>(&catalog_);
  }

  Row MakeRow(int64_t id, int64_t v) {
    return Row{Value::Int64(id), Value::Int64(v)};
  }
  std::string KeyOf(int64_t id) {
    return EncodeKey(table_->schema(), MakeRow(id, 0));
  }

  Catalog catalog_;
  Table* table_ = nullptr;
  std::unique_ptr<TransactionManager> tm_;
};

TEST_P(TxnTest, CommitMakesWritesVisible) {
  auto t1 = tm_->Begin();
  ASSERT_TRUE(t1->Insert(table_, MakeRow(1, 10)).ok());
  ASSERT_TRUE(tm_->Commit(t1.get()).ok());
  EXPECT_GT(t1->commit_ts(), 0u);

  auto t2 = tm_->Begin();
  Row out;
  ASSERT_TRUE(t2->Get(table_, KeyOf(1), &out));
  EXPECT_EQ(out[1].AsInt64(), 10);
}

TEST_P(TxnTest, UncommittedWritesInvisibleToOthers) {
  auto t1 = tm_->Begin();
  ASSERT_TRUE(t1->Insert(table_, MakeRow(1, 10)).ok());
  auto t2 = tm_->Begin();
  Row out;
  EXPECT_FALSE(t2->Get(table_, KeyOf(1), &out));
  tm_->Abort(t1.get());
  auto t3 = tm_->Begin();
  EXPECT_FALSE(t3->Get(table_, KeyOf(1), &out));
}

TEST_P(TxnTest, ReadsOwnWrites) {
  auto t1 = tm_->Begin();
  ASSERT_TRUE(t1->Insert(table_, MakeRow(1, 10)).ok());
  Row out;
  ASSERT_TRUE(t1->Get(table_, KeyOf(1), &out));
  EXPECT_EQ(out[1].AsInt64(), 10);
  ASSERT_TRUE(t1->Update(table_, MakeRow(1, 20)).ok());
  ASSERT_TRUE(t1->Get(table_, KeyOf(1), &out));
  EXPECT_EQ(out[1].AsInt64(), 20);
  ASSERT_TRUE(t1->DeleteByKey(table_, KeyOf(1)).ok());
  EXPECT_FALSE(t1->Get(table_, KeyOf(1), &out));
}

TEST_P(TxnTest, SnapshotIsolationAgainstLaterCommits) {
  {
    auto setup = tm_->Begin();
    ASSERT_TRUE(setup->Insert(table_, MakeRow(1, 100)).ok());
    ASSERT_TRUE(tm_->Commit(setup.get()).ok());
  }
  auto reader = tm_->Begin();
  {
    auto writer = tm_->Begin();
    ASSERT_TRUE(writer->Update(table_, MakeRow(1, 200)).ok());
    ASSERT_TRUE(tm_->Commit(writer.get()).ok());
  }
  // Reader still sees the old value (repeatable snapshot).
  Row out;
  ASSERT_TRUE(reader->Get(table_, KeyOf(1), &out));
  EXPECT_EQ(out[1].AsInt64(), 100);
  // A fresh transaction sees the new value.
  auto fresh = tm_->Begin();
  ASSERT_TRUE(fresh->Get(table_, KeyOf(1), &out));
  EXPECT_EQ(out[1].AsInt64(), 200);
}

TEST_P(TxnTest, FirstCommitterWins) {
  {
    auto setup = tm_->Begin();
    ASSERT_TRUE(setup->Insert(table_, MakeRow(1, 0)).ok());
    ASSERT_TRUE(tm_->Commit(setup.get()).ok());
  }
  auto t1 = tm_->Begin();
  auto t2 = tm_->Begin();
  ASSERT_TRUE(t1->Update(table_, MakeRow(1, 1)).ok());
  ASSERT_TRUE(t2->Update(table_, MakeRow(1, 2)).ok());
  ASSERT_TRUE(tm_->Commit(t1.get()).ok());
  Status st = tm_->Commit(t2.get());
  EXPECT_TRUE(st.IsAborted()) << st.ToString();
  // The loser's write must not be visible.
  auto check = tm_->Begin();
  Row out;
  ASSERT_TRUE(check->Get(table_, KeyOf(1), &out));
  EXPECT_EQ(out[1].AsInt64(), 1);
}

TEST_P(TxnTest, ConcurrentInsertSameKeyOneWins) {
  auto t1 = tm_->Begin();
  auto t2 = tm_->Begin();
  ASSERT_TRUE(t1->Insert(table_, MakeRow(7, 1)).ok());
  ASSERT_TRUE(t2->Insert(table_, MakeRow(7, 2)).ok());
  Status s1 = tm_->Commit(t1.get());
  Status s2 = tm_->Commit(t2.get());
  EXPECT_TRUE(s1.ok());
  EXPECT_TRUE(s2.IsAborted());
}

TEST_P(TxnTest, DisjointWritersBothCommit) {
  auto t1 = tm_->Begin();
  auto t2 = tm_->Begin();
  ASSERT_TRUE(t1->Insert(table_, MakeRow(1, 1)).ok());
  ASSERT_TRUE(t2->Insert(table_, MakeRow(2, 2)).ok());
  EXPECT_TRUE(tm_->Commit(t1.get()).ok());
  EXPECT_TRUE(tm_->Commit(t2.get()).ok());
}

TEST_P(TxnTest, InsertDuplicateDetectedAtBufferTime) {
  {
    auto setup = tm_->Begin();
    ASSERT_TRUE(setup->Insert(table_, MakeRow(1, 0)).ok());
    ASSERT_TRUE(tm_->Commit(setup.get()).ok());
  }
  auto t = tm_->Begin();
  EXPECT_EQ(t->Insert(table_, MakeRow(1, 5)).code(),
            StatusCode::kAlreadyExists);
}

TEST_P(TxnTest, DeleteThenInsertSameKeyInOneTxn) {
  {
    auto setup = tm_->Begin();
    ASSERT_TRUE(setup->Insert(table_, MakeRow(1, 0)).ok());
    ASSERT_TRUE(tm_->Commit(setup.get()).ok());
  }
  auto t = tm_->Begin();
  ASSERT_TRUE(t->DeleteByKey(table_, KeyOf(1)).ok());
  ASSERT_TRUE(t->Insert(table_, MakeRow(1, 42)).ok());
  ASSERT_TRUE(tm_->Commit(t.get()).ok());
  auto check = tm_->Begin();
  Row out;
  ASSERT_TRUE(check->Get(table_, KeyOf(1), &out));
  EXPECT_EQ(out[1].AsInt64(), 42);
}

TEST_P(TxnTest, ScanOverlaysOwnWrites) {
  {
    auto setup = tm_->Begin();
    for (int64_t i = 1; i <= 5; ++i) {
      ASSERT_TRUE(setup->Insert(table_, MakeRow(i, i * 10)).ok());
    }
    ASSERT_TRUE(tm_->Commit(setup.get()).ok());
  }
  auto t = tm_->Begin();
  ASSERT_TRUE(t->DeleteByKey(table_, KeyOf(2)).ok());
  ASSERT_TRUE(t->Update(table_, MakeRow(3, 999)).ok());
  ASSERT_TRUE(t->Insert(table_, MakeRow(6, 60)).ok());
  // Inserted then updated within the same transaction.
  ASSERT_TRUE(t->Insert(table_, MakeRow(7, 70)).ok());
  ASSERT_TRUE(t->Update(table_, MakeRow(7, 77)).ok());

  std::map<int64_t, int64_t> seen;
  t->Scan(table_, [&](const Row& r) {
    seen[r[0].AsInt64()] = r[1].AsInt64();
  });
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(seen.count(2), 0u);
  EXPECT_EQ(seen[3], 999);
  EXPECT_EQ(seen[6], 60);
  EXPECT_EQ(seen[7], 77);
  EXPECT_EQ(seen[1], 10);
}

TEST_P(TxnTest, AbortDiscardsEverything) {
  auto t = tm_->Begin();
  ASSERT_TRUE(t->Insert(table_, MakeRow(1, 1)).ok());
  tm_->Abort(t.get());
  auto check = tm_->Begin();
  Row out;
  EXPECT_FALSE(check->Get(table_, KeyOf(1), &out));
  EXPECT_EQ(tm_->num_aborts(), 1u);
}

TEST_P(TxnTest, DestructorAbortsUnfinished) {
  {
    auto t = tm_->Begin();
    ASSERT_TRUE(t->Insert(table_, MakeRow(1, 1)).ok());
    // dropped without commit
  }
  auto check = tm_->Begin();
  Row out;
  EXPECT_FALSE(check->Get(table_, KeyOf(1), &out));
}

TEST_P(TxnTest, OldestActiveSnapshotTracksActives) {
  Timestamp idle = tm_->OldestActiveSnapshot();
  auto t1 = tm_->Begin();
  EXPECT_EQ(tm_->OldestActiveSnapshot(), t1->begin_ts());
  {
    auto w = tm_->Begin();
    ASSERT_TRUE(w->Insert(table_, MakeRow(1, 1)).ok());
    ASSERT_TRUE(tm_->Commit(w.get()).ok());
  }
  // t1 still pins the old snapshot.
  EXPECT_EQ(tm_->OldestActiveSnapshot(), t1->begin_ts());
  tm_->Abort(t1.get());
  EXPECT_GE(tm_->OldestActiveSnapshot(), idle);
}

TEST_P(TxnTest, LostUpdateAnomalyPrevented) {
  // Classic counter increment from many threads: SI first-committer-wins
  // plus retry must preserve every increment.
  {
    auto setup = tm_->Begin();
    ASSERT_TRUE(setup->Insert(table_, MakeRow(1, 0)).ok());
    ASSERT_TRUE(tm_->Commit(setup.get()).ok());
  }
  constexpr int kThreads = 4;
  constexpr int kIncrements = 50;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (int k = 0; k < kIncrements; ++k) {
        while (true) {
          auto t = tm_->Begin();
          Row row;
          ASSERT_TRUE(t->Get(table_, KeyOf(1), &row));
          row[1] = Value::Int64(row[1].AsInt64() + 1);
          if (!t->Update(table_, row).ok()) continue;
          if (tm_->Commit(t.get()).ok()) break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  auto check = tm_->Begin();
  Row out;
  ASSERT_TRUE(check->Get(table_, KeyOf(1), &out));
  EXPECT_EQ(out[1].AsInt64(), kThreads * kIncrements);
}

TEST_P(TxnTest, WriteSkewIsPermittedUnderSI) {
  // Snapshot isolation famously permits write skew (two transactions each
  // read both rows, then write *different* rows — disjoint write sets, so
  // first-committer-wins fires for neither). This test documents the
  // engine's isolation level honestly: the combined constraint
  // (v1 + v2 >= 0 with both starting at 1 and each txn decrementing one)
  // CAN be violated, exactly as in the surveyed SI systems' defaults.
  {
    auto setup = tm_->Begin();
    ASSERT_TRUE(setup->Insert(table_, MakeRow(1, 1)).ok());
    ASSERT_TRUE(setup->Insert(table_, MakeRow(2, 1)).ok());
    ASSERT_TRUE(tm_->Commit(setup.get()).ok());
  }
  auto t1 = tm_->Begin();
  auto t2 = tm_->Begin();
  auto decrement_if_sum_positive = [&](Transaction* t, int64_t victim) {
    Row a, b;
    EXPECT_TRUE(t->Get(table_, KeyOf(1), &a));
    EXPECT_TRUE(t->Get(table_, KeyOf(2), &b));
    if (a[1].AsInt64() + b[1].AsInt64() > 0) {
      Row target = victim == 1 ? a : b;
      target[1] = Value::Int64(target[1].AsInt64() - 1);
      EXPECT_TRUE(t->Update(table_, target).ok());
    }
  };
  decrement_if_sum_positive(t1.get(), 1);
  decrement_if_sum_positive(t2.get(), 2);
  EXPECT_TRUE(tm_->Commit(t1.get()).ok());
  EXPECT_TRUE(tm_->Commit(t2.get()).ok());  // SI: no conflict, both commit

  auto check = tm_->Begin();
  Row a, b;
  ASSERT_TRUE(check->Get(table_, KeyOf(1), &a));
  ASSERT_TRUE(check->Get(table_, KeyOf(2), &b));
  // The invariant each transaction individually preserved is now broken.
  EXPECT_EQ(a[1].AsInt64() + b[1].AsInt64(), 0);
}

TEST_P(TxnTest, ReadOnlyCommitIsTrivial) {
  auto t = tm_->Begin();
  Row out;
  t->Get(table_, KeyOf(1), &out);
  EXPECT_TRUE(tm_->Commit(t.get()).ok());
  EXPECT_EQ(tm_->num_commits(), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllFormats, TxnTest,
                         ::testing::Values(TableFormat::kRow,
                                           TableFormat::kColumn,
                                           TableFormat::kDual),
                         [](const auto& info) {
                           return TableFormatToString(info.param);
                         });

}  // namespace
}  // namespace oltap
