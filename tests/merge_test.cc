#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "storage/column_store.h"

namespace oltap {
namespace {

Schema TestSchema() {
  return SchemaBuilder()
      .AddInt64("id", false)
      .AddInt64("v")
      .SetKey({"id"})
      .Build();
}

Row MakeRow(int64_t id, int64_t v) {
  return Row{Value::Int64(id), Value::Int64(v)};
}

std::string KeyOf(int64_t id) {
  Schema s = TestSchema();
  return EncodeKey(s, MakeRow(id, 0));
}

// Collects all (id, v) pairs visible at read_ts through a snapshot.
std::set<std::pair<int64_t, int64_t>> VisibleSet(const ColumnTable& table,
                                                 Timestamp read_ts) {
  std::set<std::pair<int64_t, int64_t>> out;
  ColumnTable::Snapshot snap = table.GetSnapshot(read_ts);
  BitVector mask;
  snap.main->VisibleMask(read_ts, &mask);
  for (size_t i = mask.FindNextSet(0); i < mask.size();
       i = mask.FindNextSet(i + 1)) {
    Row r = snap.main->GetRow(static_cast<RowId>(i));
    out.insert({r[0].AsInt64(), r[1].AsInt64()});
  }
  auto visit = [&](uint32_t, const Row& r) {
    out.insert({r[0].AsInt64(), r[1].AsInt64()});
  };
  if (snap.frozen != nullptr) snap.frozen->ForEachVisible(read_ts, visit);
  snap.delta->ForEachVisible(read_ts, visit);
  return out;
}

TEST(MergeTest, DeltaMovesToMain) {
  ColumnTable table(TestSchema());
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(table.InsertCommitted(MakeRow(i, i * 10), 10 + i).ok());
  }
  EXPECT_EQ(table.main_size(), 0u);
  EXPECT_EQ(table.delta_size(), 100u);

  size_t live = table.MergeDelta(/*merge_ts=*/500);
  EXPECT_EQ(live, 100u);
  EXPECT_EQ(table.main_size(), 100u);
  EXPECT_EQ(table.delta_size(), 0u);
  EXPECT_EQ(table.num_merges(), 1u);

  // All rows still visible, now through the main.
  EXPECT_EQ(VisibleSet(table, 500).size(), 100u);
  Row out;
  ASSERT_TRUE(table.Lookup(KeyOf(42), 500, &out));
  EXPECT_EQ(out[1].AsInt64(), 420);
}

TEST(MergeTest, EmptyMergeIsNoop) {
  ColumnTable table(TestSchema());
  EXPECT_EQ(table.MergeDelta(10), 0u);
  EXPECT_EQ(table.num_merges(), 0u);
}

TEST(MergeTest, DeletedRowsDroppedAtHorizon) {
  ColumnTable table(TestSchema());
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(table.InsertCommitted(MakeRow(i, i), 10).ok());
  }
  ASSERT_TRUE(table.DeleteCommitted(KeyOf(3), 20).ok());
  ASSERT_TRUE(table.DeleteCommitted(KeyOf(7), 20).ok());
  // GC horizon above the deletes: rows physically dropped.
  size_t live = table.MergeDelta(/*merge_ts=*/100, /*gc_horizon=*/100);
  EXPECT_EQ(live, 8u);
  EXPECT_EQ(table.main_size(), 8u);
  EXPECT_EQ(VisibleSet(table, 100).size(), 8u);
}

TEST(MergeTest, DeletedRowsKeptForOldSnapshots) {
  ColumnTable table(TestSchema());
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(table.InsertCommitted(MakeRow(i, i), 10).ok());
  }
  ASSERT_TRUE(table.DeleteCommitted(KeyOf(3), 50).ok());
  // An active reader at ts 30 forces the deleted row to be carried.
  size_t live = table.MergeDelta(/*merge_ts=*/100, /*gc_horizon=*/30);
  EXPECT_EQ(live, 10u);  // physically 10 rows in new main
  // Visible at 30: all ten (delete at 50 is later).
  EXPECT_EQ(VisibleSet(table, 30).size(), 10u);
  // Visible at 100: nine.
  EXPECT_EQ(VisibleSet(table, 100).size(), 9u);
  Row out;
  EXPECT_TRUE(table.Lookup(KeyOf(3), 30, &out));
  EXPECT_FALSE(table.Lookup(KeyOf(3), 100, &out));
}

TEST(MergeTest, SecondMergeCompactsCarriedDeletes) {
  ColumnTable table(TestSchema());
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(table.InsertCommitted(MakeRow(i, i), 10).ok());
  }
  ASSERT_TRUE(table.DeleteCommitted(KeyOf(0), 50).ok());
  ASSERT_EQ(table.MergeDelta(100, 30), 10u);  // carried
  ASSERT_TRUE(table.DeleteCommitted(KeyOf(1), 150).ok());
  // Horizon has advanced past both deletes now.
  EXPECT_EQ(table.MergeDelta(200, 200), 8u);
  EXPECT_EQ(VisibleSet(table, 200).size(), 8u);
}

TEST(MergeTest, UpdatesAcrossMergeKeepHistory) {
  ColumnTable table(TestSchema());
  ASSERT_TRUE(table.InsertCommitted(MakeRow(1, 100), 10).ok());
  ASSERT_TRUE(table.MergeDelta(20, 5) > 0);  // row now in main
  ASSERT_TRUE(table.UpdateCommitted(KeyOf(1), MakeRow(1, 200), 30).ok());
  Row out;
  ASSERT_TRUE(table.Lookup(KeyOf(1), 25, &out));
  EXPECT_EQ(out[1].AsInt64(), 100);  // old image from main
  ASSERT_TRUE(table.Lookup(KeyOf(1), 30, &out));
  EXPECT_EQ(out[1].AsInt64(), 200);  // new image from delta
  // Merge again with an old horizon: both versions survive physically.
  table.MergeDelta(40, 25);
  ASSERT_TRUE(table.Lookup(KeyOf(1), 25, &out));
  EXPECT_EQ(out[1].AsInt64(), 100);
  ASSERT_TRUE(table.Lookup(KeyOf(1), 50, &out));
  EXPECT_EQ(out[1].AsInt64(), 200);
}

TEST(MergeTest, SnapshotTakenBeforeMergeStaysValid) {
  ColumnTable table(TestSchema());
  for (int64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(table.InsertCommitted(MakeRow(i, i), 10).ok());
  }
  ColumnTable::Snapshot snap = table.GetSnapshot(10);
  table.MergeDelta(100, 100);
  // The pinned delta still serves the old snapshot.
  size_t count = 0;
  snap.delta->ForEachVisible(10, [&](uint32_t, const Row&) { ++count; });
  EXPECT_EQ(count, 50u);
}

TEST(MergeTest, WritesDuringMergeLandInNewDelta) {
  ColumnTable table(TestSchema());
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(table.InsertCommitted(MakeRow(i, i), 10).ok());
  }
  std::atomic<bool> start{false}, done{false};
  std::atomic<int64_t> inserted_during{0};
  std::thread writer([&] {
    while (!start.load()) {
    }
    int64_t id = 1000;
    while (!done.load()) {
      if (table.InsertCommitted(MakeRow(id, id), 100 + id).ok()) {
        inserted_during.fetch_add(1);
        ++id;
      }
    }
  });
  start.store(true);
  for (int m = 0; m < 5; ++m) {
    table.MergeDelta(10000 + m, 10000 + m);
  }
  done.store(true);
  writer.join();
  // Nothing lost: all original rows + everything inserted during merges.
  Timestamp late = 1'000'000;
  EXPECT_EQ(VisibleSet(table, late).size(),
            1000u + static_cast<size_t>(inserted_during.load()));
}

TEST(MergeTest, DeletesDuringMergeAreNotLost) {
  // Repeatedly: load rows, start a merge while a thread deletes rows.
  // Afterwards every delete must be reflected.
  for (int round = 0; round < 3; ++round) {
    ColumnTable table(TestSchema());
    for (int64_t i = 0; i < 2000; ++i) {
      ASSERT_TRUE(table.InsertCommitted(MakeRow(i, i), 10).ok());
    }
    std::atomic<bool> start{false};
    std::vector<int64_t> deleted;
    std::thread deleter([&] {
      while (!start.load()) {
      }
      Rng rng(round + 1);
      for (int k = 0; k < 200; ++k) {
        int64_t id = static_cast<int64_t>(rng.Uniform(2000));
        if (table.DeleteCommitted(KeyOf(id), 100 + k).ok()) {
          deleted.push_back(id);
        }
      }
    });
    start.store(true);
    table.MergeDelta(5000, 50);  // horizon below deletes: all rows carried
    deleter.join();
    table.MergeDelta(6000, 50);

    auto visible = VisibleSet(table, 1'000'000);
    std::set<int64_t> dead(deleted.begin(), deleted.end());
    EXPECT_EQ(visible.size(), 2000u - dead.size());
    for (int64_t id : dead) {
      Row out;
      EXPECT_FALSE(table.Lookup(KeyOf(id), 1'000'000, &out))
          << "round " << round << " id " << id;
    }
  }
}

TEST(MergeTest, ConcurrentMergersSerialize) {
  ColumnTable table(TestSchema());
  for (int64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(table.InsertCommitted(MakeRow(i, i), 10).ok());
  }
  std::vector<std::thread> mergers;
  for (int t = 0; t < 4; ++t) {
    mergers.emplace_back([&, t] { table.MergeDelta(1000 + t, 1000 + t); });
  }
  for (auto& t : mergers) t.join();
  EXPECT_EQ(VisibleSet(table, 2000).size(), 500u);
}

TEST(MergeTest, RebuildsEncodings) {
  // After merge the new main should be dictionary/FOR encoded again.
  Schema schema = SchemaBuilder()
                      .AddInt64("id", false)
                      .AddString("s")
                      .SetKey({"id"})
                      .Build();
  ColumnTable table(schema);
  for (int64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(table
                    .InsertCommitted(Row{Value::Int64(i),
                                         Value::String(i % 2 ? "odd" : "even")},
                                     10)
                    .ok());
  }
  table.MergeDelta(100, 100);
  ColumnTable::Snapshot snap = table.GetSnapshot(100);
  ASSERT_EQ(snap.main->num_rows(), 64u);
  EXPECT_TRUE(snap.main->column(0).int64_packed());
  ASSERT_NE(snap.main->column(1).dictionary(), nullptr);
  EXPECT_EQ(snap.main->column(1).dictionary()->size(), 2u);
}

}  // namespace
}  // namespace oltap
