#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/logging.h"
#include "workload/chbench.h"

namespace oltap {
namespace {

CHConfig SmallConfig() {
  CHConfig config;
  config.warehouses = 2;
  config.districts_per_warehouse = 3;
  config.customers_per_district = 20;
  config.items = 100;
  config.initial_orders_per_district = 10;
  return config;
}

class CHBenchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bench_ = std::make_unique<CHBenchmark>(&db_, SmallConfig());
    ASSERT_TRUE(bench_->CreateTables().ok());
    ASSERT_TRUE(bench_->Load().ok());
  }

  int64_t CountOf(const std::string& table) {
    auto r = db_.Execute("SELECT COUNT(*) FROM " + table);
    OLTAP_CHECK(r.ok()) << r.status().ToString();
    return r->rows[0][0].AsInt64();
  }

  Database db_;
  std::unique_ptr<CHBenchmark> bench_;
};

TEST_F(CHBenchTest, LoadCardinalities) {
  const CHConfig& c = bench_->config();
  EXPECT_EQ(CountOf("warehouse"), c.warehouses);
  EXPECT_EQ(CountOf("district"),
            c.warehouses * c.districts_per_warehouse);
  EXPECT_EQ(CountOf("customer"), c.warehouses * c.districts_per_warehouse *
                                     c.customers_per_district);
  EXPECT_EQ(CountOf("item"), c.items);
  EXPECT_EQ(CountOf("stock"), c.warehouses * c.items);
  EXPECT_EQ(CountOf("orders"), c.warehouses * c.districts_per_warehouse *
                                   c.initial_orders_per_district);
  EXPECT_GT(CountOf("orderline"), CountOf("orders") * 4);  // 5-15 lines each
  // ~30% undelivered.
  int64_t undelivered = CountOf("neworder");
  EXPECT_GT(undelivered, 0);
  EXPECT_LT(undelivered, CountOf("orders"));
}

TEST_F(CHBenchTest, NewOrderCreatesRows) {
  Rng rng(1);
  int64_t orders_before = CountOf("orders");
  int64_t neworders_before = CountOf("neworder");
  ASSERT_TRUE(bench_->NewOrder(&rng).ok());
  EXPECT_EQ(CountOf("orders"), orders_before + 1);
  EXPECT_EQ(CountOf("neworder"), neworders_before + 1);
}

TEST_F(CHBenchTest, PaymentMovesMoney) {
  Rng rng(2);
  auto before = db_.Execute("SELECT SUM(c_ytd_payment) FROM customer");
  int64_t history_before = CountOf("history");
  ASSERT_TRUE(bench_->Payment(&rng).ok());
  auto after = db_.Execute("SELECT SUM(c_ytd_payment) FROM customer");
  EXPECT_GT(after->rows[0][0].AsDouble(), before->rows[0][0].AsDouble());
  EXPECT_EQ(CountOf("history"), history_before + 1);
}

TEST_F(CHBenchTest, DeliveryConsumesNewOrders) {
  Rng rng(3);
  int64_t before = CountOf("neworder");
  ASSERT_GT(before, 0);
  // Delivery per warehouse: repeat enough times to consume several.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(bench_->Delivery(&rng).ok());
  }
  EXPECT_LT(CountOf("neworder"), before);
  // Delivered orders now carry a carrier id.
  auto r = db_.Execute(
      "SELECT COUNT(*) FROM orders WHERE o_carrier_id IS NOT NULL");
  EXPECT_GT(r->rows[0][0].AsInt64(), 0);
}

TEST_F(CHBenchTest, OrderStatusAndStockLevelAreReadOnly) {
  Rng rng(4);
  int64_t orders = CountOf("orders");
  int64_t stock = CountOf("stock");
  ASSERT_TRUE(bench_->OrderStatus(&rng).ok());
  ASSERT_TRUE(bench_->StockLevel(&rng).ok());
  EXPECT_EQ(CountOf("orders"), orders);
  EXPECT_EQ(CountOf("stock"), stock);
}

TEST_F(CHBenchTest, MixedRunExecutesAllTypes) {
  Rng rng(5);
  CHTxnStats stats;
  for (int i = 0; i < 300; ++i) {
    Status st = bench_->RunMixed(&rng, &stats);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  EXPECT_EQ(stats.total(), 300u);
  EXPECT_GT(stats.new_order, 0u);
  EXPECT_GT(stats.payment, 0u);
  EXPECT_GT(stats.order_status, 0u);
  EXPECT_GT(stats.delivery, 0u);
  EXPECT_GT(stats.stock_level, 0u);
}

TEST_F(CHBenchTest, AllAnalyticQueriesRun) {
  // Give the analytics something fresh to chew on.
  Rng rng(6);
  CHTxnStats stats;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(bench_->RunMixed(&rng, &stats).ok());
  }
  const auto& queries = CHBenchmark::Queries();
  ASSERT_EQ(queries.size(), 13u);
  for (size_t q = 0; q < queries.size(); ++q) {
    auto r = bench_->RunQuery(q);
    ASSERT_TRUE(r.ok()) << queries[q].name << ": " << r.status().ToString();
    EXPECT_FALSE(r->columns.empty()) << queries[q].name;
  }
}

TEST_F(CHBenchTest, ExplainAnalyzeOnAnalyticQuery) {
  const auto& queries = CHBenchmark::Queries();
  ASSERT_FALSE(queries.empty());
  // Q1 scans order_line and aggregates — a profile with real row counts.
  auto r = db_.Execute("EXPLAIN ANALYZE " + queries[0].sql);
  ASSERT_TRUE(r.ok()) << queries[0].name << ": " << r.status().ToString();
  ASSERT_EQ(r->columns.size(), 5u);
  EXPECT_EQ(r->columns[0], "operator");
  EXPECT_EQ(r->columns[1], "est_rows");
  EXPECT_EQ(r->columns[2], "rows");
  EXPECT_EQ(r->columns[3], "batches");
  EXPECT_EQ(r->columns[4], "time_ms");
  ASSERT_GE(r->rows.size(), 2u);  // at least aggregate over scan
  int64_t max_rows = 0;
  double max_time_ms = 0.0;
  for (const Row& row : r->rows) {
    EXPECT_FALSE(row[0].AsString().empty());
    max_rows = std::max(max_rows, row[2].AsInt64());
    EXPECT_GE(row[3].AsInt64(), 0);  // batches
  }
  EXPECT_GT(max_rows, 0);  // the loaded order lines flowed through the scan
#ifndef OLTAP_OBS_DISABLED
  for (const Row& row : r->rows) {
    max_time_ms = std::max(max_time_ms, row[4].AsDouble());
  }
  EXPECT_GT(max_time_ms, 0.0);
#endif
}

TEST_F(CHBenchTest, QueriesStableAcrossMerge) {
  Rng rng(7);
  CHTxnStats stats;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(bench_->RunMixed(&rng, &stats).ok());
  }
  auto before = bench_->RunQuery(2);  // order-size distribution
  ASSERT_TRUE(before.ok());
  db_.MergeAll();
  auto after = bench_->RunQuery(2);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(before->rows.size(), after->rows.size());
  for (size_t i = 0; i < before->rows.size(); ++i) {
    EXPECT_EQ(before->rows[i][0].AsInt64(), after->rows[i][0].AsInt64());
    EXPECT_EQ(before->rows[i][1].AsInt64(), after->rows[i][1].AsInt64());
  }
}

TEST_F(CHBenchTest, ConcurrentMixedWorkloadKeepsInvariants) {
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  std::vector<CHTxnStats> stats(kThreads);
  std::atomic<int> hard_failures{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(100 + t);
      for (int i = 0; i < 100; ++i) {
        Status st = bench_->RunMixed(&rng, &stats[t], /*max_retries=*/20);
        if (!st.ok() && !st.IsAborted()) hard_failures.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(hard_failures.load(), 0);

  // Invariant: every (w,d): d_next_o_id - 1 == number of orders in that
  // district (orders are issued densely per district).
  auto r = db_.Execute(
      "SELECT d_w_id, d_id, d_next_o_id FROM district ORDER BY d_w_id, d_id");
  ASSERT_TRUE(r.ok());
  for (const Row& drow : r->rows) {
    auto count = db_.Execute(
        "SELECT COUNT(*) FROM orders WHERE o_w_id = " +
        std::to_string(drow[0].AsInt64()) +
        " AND o_d_id = " + std::to_string(drow[1].AsInt64()));
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(count->rows[0][0].AsInt64(), drow[2].AsInt64() - 1)
        << "district (" << drow[0].AsInt64() << "," << drow[1].AsInt64()
        << ")";
  }
  // Invariant: every order has exactly o_ol_cnt order lines.
  auto sums = db_.Execute(
      "SELECT SUM(o_ol_cnt) FROM orders");
  auto lines = db_.Execute("SELECT COUNT(*) FROM orderline");
  EXPECT_EQ(sums->rows[0][0].AsInt64(), lines->rows[0][0].AsInt64());
}

}  // namespace
}  // namespace oltap
