#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace oltap {
namespace {

// The global registry is process-wide and shared with every other test in
// this binary, so these tests use private Counter/Histogram instances or a
// local registry, and only assert presence/monotonicity on the global one.

// Tests that assert mutators actually mutate cannot run in a build that
// compiles the instrumentation out.
#ifdef OLTAP_OBS_DISABLED
#define OLTAP_REQUIRE_OBS() \
  GTEST_SKIP() << "instrumentation compiled out (OLTAP_OBS_DISABLED)"
#else
#define OLTAP_REQUIRE_OBS() static_cast<void>(0)
#endif

TEST(ObsCounterTest, ConcurrentAddsAreExact) {
  OLTAP_REQUIRE_OBS();
  obs::Counter counter;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter.Add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.Value(),
            static_cast<uint64_t>(kThreads) * kAddsPerThread);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(ObsGaugeTest, SetAndAdd) {
  OLTAP_REQUIRE_OBS();
  obs::Gauge gauge;
  gauge.Set(42);
  EXPECT_EQ(gauge.Value(), 42);
  gauge.Add(-50);
  EXPECT_EQ(gauge.Value(), -8);
  gauge.Reset();
  EXPECT_EQ(gauge.Value(), 0);
}

TEST(ObsHistogramTest, PercentilesFromLogBuckets) {
  OLTAP_REQUIRE_OBS();
  obs::Histogram hist;
  for (uint64_t v = 1; v <= 1000; ++v) hist.Record(v);
  obs::HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_NEAR(snap.mean, 500.5, 0.01);
  EXPECT_EQ(snap.max, 1000u);
  // Buckets are powers of two, so a percentile is only bracketed: the true
  // p50 (500) lies in bucket (255, 511], reported as its upper bound.
  EXPECT_GE(snap.p50, 500u);
  EXPECT_LE(snap.p50, 511u);
  EXPECT_GE(snap.p95, 950u);
  EXPECT_LE(snap.p95, 1000u);  // clamped to recorded max
  EXPECT_GE(snap.p99, snap.p95);
  EXPECT_LE(snap.p99, snap.max);
  EXPECT_GE(snap.p999, snap.p99);
  EXPECT_LE(snap.p999, snap.max);
}

TEST(ObsHistogramTest, ZeroAndEmpty) {
  OLTAP_REQUIRE_OBS();
  obs::Histogram hist;
  obs::HistogramSnapshot empty = hist.Snapshot();
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.p99, 0u);
  EXPECT_EQ(empty.p999, 0u);
  hist.Record(0);
  obs::HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.p50, 0u);
  EXPECT_EQ(snap.max, 0u);
}

TEST(ObsHistogramTest, ConcurrentRecordsKeepCountAndMax) {
  OLTAP_REQUIRE_OBS();
  obs::Histogram hist;
  constexpr int kThreads = 8;
  constexpr int kRecordsPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kRecordsPerThread; ++i) {
        hist.Record(static_cast<uint64_t>(t * kRecordsPerThread + i));
      }
    });
  }
  for (auto& t : threads) t.join();
  obs::HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count,
            static_cast<uint64_t>(kThreads) * kRecordsPerThread);
  EXPECT_EQ(snap.max,
            static_cast<uint64_t>(kThreads) * kRecordsPerThread - 1);
}

TEST(ObsRegistryTest, SameNameSamePointer) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.GetCounter("x.count");
  obs::Counter* b = registry.GetCounter("x.count");
  EXPECT_EQ(a, b);
  EXPECT_NE(registry.GetCounter("y.count"), a);
  EXPECT_EQ(registry.GetHistogram("x.lat"), registry.GetHistogram("x.lat"));
  EXPECT_EQ(registry.GetGauge("x.depth"), registry.GetGauge("x.depth"));
}

TEST(ObsRegistryTest, ConcurrentRegistrationAndMutation) {
  OLTAP_REQUIRE_OBS();
  obs::MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kIters; ++i) {
        registry.GetCounter("shared.count")->Add(1);
        registry.GetHistogram("shared.lat")->Record(
            static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("shared.count")->Value(),
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(registry.GetHistogram("shared.lat")->Snapshot().count,
            static_cast<uint64_t>(kThreads) * kIters);
}

TEST(ObsRegistryTest, SnapshotAndResetAll) {
  OLTAP_REQUIRE_OBS();
  obs::MetricsRegistry registry;
  registry.GetCounter("a.count")->Add(7);
  registry.GetGauge("a.depth")->Set(3);
  registry.GetHistogram("a.lat")->Record(100);
  obs::MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "a.count");
  EXPECT_EQ(snap.counters[0].second, 7u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, 3);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count, 1u);

  registry.ResetAll();
  snap = registry.Snapshot();
  EXPECT_EQ(snap.counters[0].second, 0u);
  EXPECT_EQ(snap.gauges[0].second, 0);
  EXPECT_EQ(snap.histograms[0].second.count, 0u);
}

TEST(ObsRegistryTest, DefaultPreRegistersCoreMetrics) {
  obs::MetricsSnapshot snap = obs::MetricsRegistry::Default()->Snapshot();
  auto has_counter = [&](const std::string& name) {
    for (const auto& [n, v] : snap.counters) {
      if (n == name) return true;
    }
    return false;
  };
  auto has_histogram = [&](const std::string& name) {
    for (const auto& [n, v] : snap.histograms) {
      if (n == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_counter("txn.commits"));
  EXPECT_TRUE(has_counter("merge.runs"));
  EXPECT_TRUE(has_counter("2pc.commits"));
  EXPECT_TRUE(has_counter("net.messages"));
  EXPECT_TRUE(has_histogram("wal.fsync_ns"));
  EXPECT_TRUE(has_histogram("wm.latency_us.oltp"));
}

TEST(ObsScopedTimerTest, AccumulatesIntoSinkAndHistogram) {
  obs::Histogram hist;
  uint64_t sink = 0;
  {
    obs::ScopedTimer timer(&sink, &hist);
    // Do a little work so the clock advances on coarse-clock platforms.
    volatile uint64_t x = 0;
    for (int i = 0; i < 10000; ++i) x += static_cast<uint64_t>(i);
  }
#ifndef OLTAP_OBS_DISABLED
  EXPECT_GT(sink, 0u);
  EXPECT_EQ(hist.Snapshot().count, 1u);
#endif
}

TEST(ObsExporterTest, TextAndJsonFormats) {
  OLTAP_REQUIRE_OBS();
  obs::MetricsRegistry registry;
  registry.GetCounter("e.count")->Add(5);
  registry.GetGauge("e.depth")->Set(-2);
  registry.GetHistogram("e.lat")->Record(64);

  std::string text = obs::RenderText(registry);
  EXPECT_NE(text.find("counter e.count 5"), std::string::npos);
  EXPECT_NE(text.find("gauge e.depth -2"), std::string::npos);
  EXPECT_NE(text.find("histogram e.lat count=1"), std::string::npos);

  std::string json = obs::RenderJson(registry);
  EXPECT_NE(json.find("\"counters\":{\"e.count\":5}"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{\"e.depth\":-2}"), std::string::npos);
  EXPECT_NE(json.find("\"e.lat\":{\"count\":1"), std::string::npos);
}

TEST(ObsQueryProfileTest, RenderShowsTree) {
  obs::QueryProfile profile;
  profile.root.name = "HashAgg";
  profile.root.rows = 1;
  profile.root.batches = 1;
  profile.root.time_ns = 2500000;
  obs::QueryProfile::Node child;
  child.name = "Scan(t)";
  child.rows = 100;
  child.batches = 1;
  profile.root.children.push_back(std::move(child));
  std::string text = profile.Render();
  EXPECT_NE(text.find("HashAgg rows=1 batches=1 time=2.500ms"),
            std::string::npos);
  EXPECT_NE(text.find("\n  Scan(t) rows=100"), std::string::npos);
}

}  // namespace
}  // namespace oltap
