#ifndef OLTAP_TESTS_FAILPOINT_FIXTURE_H_
#define OLTAP_TESTS_FAILPOINT_FIXTURE_H_

#include <string>
#include <vector>

#include "common/failpoint.h"
#include "gtest/gtest.h"

namespace oltap {

// Failpoint hygiene for fault-injection tests. The registry is process-
// global, so one test that exits with a failpoint still armed silently
// injects faults into every later test in the binary. This fixture
// guarantees a clean registry on entry and *asserts* (not just cleans)
// that the test disarmed everything it enabled.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Get().DisableAll(); }

  void TearDown() override {
    std::vector<std::string> active = FailpointRegistry::Get().ActiveList();
    if (!active.empty()) {
      std::string joined;
      for (const std::string& name : active) {
        if (!joined.empty()) joined += ", ";
        joined += name;
      }
      ADD_FAILURE() << "test left failpoints armed: " << joined;
      FailpointRegistry::Get().DisableAll();
    }
  }
};

}  // namespace oltap

#endif  // OLTAP_TESTS_FAILPOINT_FIXTURE_H_
