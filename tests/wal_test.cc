#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "storage/catalog.h"
#include "txn/transaction_manager.h"
#include "txn/wal.h"

namespace oltap {
namespace {

Schema TestSchema() {
  return SchemaBuilder()
      .AddInt64("id", false)
      .AddString("s")
      .AddDouble("d")
      .SetKey({"id"})
      .Build();
}

Row MakeRow(int64_t id, const std::string& s, double d) {
  return Row{Value::Int64(id), Value::String(s), Value::Double(d)};
}

TEST(WalTest, LogAndReplayRoundTrip) {
  Wal wal;
  Catalog source;
  ASSERT_TRUE(source.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  TransactionManager tm(&source, &wal);
  Table* table = source.GetTable("t");

  {
    auto t = tm.Begin();
    ASSERT_TRUE(t->Insert(table, MakeRow(1, "one", 1.5)).ok());
    ASSERT_TRUE(t->Insert(table, MakeRow(2, "two", 2.5)).ok());
    ASSERT_TRUE(tm.Commit(t.get()).ok());
  }
  {
    auto t = tm.Begin();
    ASSERT_TRUE(t->Update(table, MakeRow(1, "uno", 1.5)).ok());
    ASSERT_TRUE(t->Delete(table, MakeRow(2, "", 0)).ok());
    ASSERT_TRUE(tm.Commit(t.get()).ok());
  }
  EXPECT_EQ(wal.num_records(), 2u);

  // Replay into a fresh catalog; state must match.
  Catalog recovered;
  ASSERT_TRUE(
      recovered.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  auto stats = Wal::Replay(wal.buffer(), &recovered);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->txns_applied, 2u);
  EXPECT_EQ(stats->ops_applied, 4u);
  EXPECT_FALSE(stats->truncated_tail);

  Table* rt = recovered.GetTable("t");
  Timestamp late = 1'000'000;
  Row out;
  ASSERT_TRUE(rt->Lookup(EncodeKey(rt->schema(), MakeRow(1, "", 0)), late,
                         &out));
  EXPECT_EQ(out[1].AsString(), "uno");
  EXPECT_FALSE(rt->Lookup(EncodeKey(rt->schema(), MakeRow(2, "", 0)), late,
                          &out));
  EXPECT_EQ(rt->CountVisible(late), 1u);
}

TEST(WalTest, NullValuesSurviveRoundTrip) {
  Wal wal;
  Catalog source;
  ASSERT_TRUE(source.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  TransactionManager tm(&source, &wal);
  Table* table = source.GetTable("t");
  {
    auto t = tm.Begin();
    ASSERT_TRUE(t->Insert(table, Row{Value::Int64(1), Value::Null(ValueType::kString),
                                     Value::Null(ValueType::kDouble)})
                    .ok());
    ASSERT_TRUE(tm.Commit(t.get()).ok());
  }
  Catalog recovered;
  ASSERT_TRUE(
      recovered.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  ASSERT_TRUE(Wal::Replay(wal.buffer(), &recovered).ok());
  Row out;
  Table* rt = recovered.GetTable("t");
  ASSERT_TRUE(rt->Lookup(EncodeKey(rt->schema(), MakeRow(1, "", 0)),
                         1'000'000, &out));
  EXPECT_TRUE(out[1].is_null());
  EXPECT_TRUE(out[2].is_null());
}

TEST(WalTest, TornTailStopsReplayCleanly) {
  Wal wal;
  Catalog source;
  ASSERT_TRUE(source.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  TransactionManager tm(&source, &wal);
  Table* table = source.GetTable("t");
  for (int i = 0; i < 3; ++i) {
    auto t = tm.Begin();
    ASSERT_TRUE(t->Insert(table, MakeRow(i, "x", 0)).ok());
    ASSERT_TRUE(tm.Commit(t.get()).ok());
  }
  std::string data = wal.buffer();
  // Chop mid-record: replay applies the full records and reports the tear.
  std::string torn = data.substr(0, data.size() - 7);
  Catalog recovered;
  ASSERT_TRUE(
      recovered.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  auto stats = Wal::Replay(torn, &recovered);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->txns_applied, 2u);
  EXPECT_TRUE(stats->truncated_tail);
}

TEST(WalTest, CorruptRecordDetectedByChecksum) {
  Wal wal;
  ASSERT_TRUE(wal.LogCommit(1, 10,
                            {WalOp{WalOp::kInsert, "t",
                                   "", MakeRow(1, "x", 0)}})
                  .ok());
  std::string data = wal.buffer();
  data[data.size() / 2] ^= 0x40;  // flip a bit in the body
  Catalog recovered;
  ASSERT_TRUE(
      recovered.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  auto stats = Wal::Replay(data, &recovered);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->txns_applied, 0u);
  EXPECT_TRUE(stats->truncated_tail);
}

TEST(WalTest, FileBackedLogReplays) {
  std::string path = ::testing::TempDir() + "/oltap_wal_test.log";
  std::remove(path.c_str());
  {
    auto wal = Wal::OpenFile(path);
    ASSERT_TRUE(wal.ok());
    Catalog source;
    ASSERT_TRUE(
        source.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
    TransactionManager tm(&source, wal->get());
    Table* table = source.GetTable("t");
    auto t = tm.Begin();
    ASSERT_TRUE(t->Insert(table, MakeRow(9, "file", 9.9)).ok());
    ASSERT_TRUE(tm.Commit(t.get()).ok());
  }
  Catalog recovered;
  ASSERT_TRUE(
      recovered.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  auto stats = Wal::ReplayFile(path, &recovered);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->txns_applied, 1u);
  Table* rt = recovered.GetTable("t");
  Row out;
  EXPECT_TRUE(rt->Lookup(EncodeKey(rt->schema(), MakeRow(9, "", 0)),
                         1'000'000, &out));
  std::remove(path.c_str());
}

TEST(WalTest, FsyncOnCommitPathIsDurable) {
  std::string path = ::testing::TempDir() + "/oltap_wal_fsync_test.log";
  std::remove(path.c_str());
  {
    Wal::Options wopts;
    wopts.fsync_on_commit = true;
    auto wal = Wal::OpenFile(path, wopts);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    Catalog source;
    ASSERT_TRUE(
        source.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
    TransactionManager tm(&source, wal->get());
    Table* table = source.GetTable("t");
    for (int i = 0; i < 5; ++i) {
      auto t = tm.Begin();
      ASSERT_TRUE(t->Insert(table, MakeRow(i, "sync", i * 1.0)).ok());
      ASSERT_TRUE(tm.Commit(t.get()).ok());
    }
  }
  Catalog recovered;
  ASSERT_TRUE(
      recovered.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  auto stats = Wal::ReplayFile(path, &recovered);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->txns_applied, 5u);
  EXPECT_EQ(recovered.GetTable("t")->CountVisible(1'000'000), 5u);
  std::remove(path.c_str());
}

TEST(WalTest, InjectedAppendErrorFailsCommitCleanly) {
  Wal wal;
  Catalog source;
  ASSERT_TRUE(source.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  TransactionManager tm(&source, &wal);
  Table* table = source.GetTable("t");

  FailpointConfig cfg;
  cfg.status = Status::Unavailable("injected WAL write error");
  ScopedFailpoint armed("wal.append.error", cfg);
  {
    auto t = tm.Begin();
    ASSERT_TRUE(t->Insert(table, MakeRow(1, "lost", 0)).ok());
    Status st = tm.Commit(t.get());
    EXPECT_TRUE(st.IsUnavailable()) << st.ToString();
  }
  // The commit failed at the durability point: nothing was logged and
  // nothing is visible.
  EXPECT_EQ(wal.num_records(), 0u);
  EXPECT_EQ(table->CountVisible(1'000'000), 0u);

  // The engine keeps working once the fault passes (max_fires=1).
  {
    auto t = tm.Begin();
    ASSERT_TRUE(t->Insert(table, MakeRow(2, "kept", 0)).ok());
    ASSERT_TRUE(tm.Commit(t.get()).ok());
  }
  EXPECT_EQ(wal.num_records(), 1u);
  EXPECT_EQ(table->CountVisible(1'000'000), 1u);

  // Replay reflects only the surviving commit.
  Catalog recovered;
  ASSERT_TRUE(
      recovered.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  auto stats = Wal::Replay(wal.buffer(), &recovered);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->txns_applied, 1u);
  Row out;
  EXPECT_TRUE(recovered.GetTable("t")->Lookup(
      EncodeKey(table->schema(), MakeRow(2, "", 0)), 1'000'000, &out));
}

TEST(WalTest, InjectedFsyncErrorSurfacesThroughCommit) {
  std::string path = ::testing::TempDir() + "/oltap_wal_fsyncfail_test.log";
  std::remove(path.c_str());
  Wal::Options wopts;
  wopts.fsync_on_commit = true;
  auto wal = Wal::OpenFile(path, wopts);
  ASSERT_TRUE(wal.ok());
  Catalog source;
  ASSERT_TRUE(source.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  TransactionManager tm(&source, wal->get());
  Table* table = source.GetTable("t");

  FailpointConfig cfg;
  cfg.status = Status::Unavailable("injected fsync failure");
  ScopedFailpoint armed("wal.fsync.error", cfg);
  auto t = tm.Begin();
  ASSERT_TRUE(t->Insert(table, MakeRow(1, "x", 0)).ok());
  Status st = tm.Commit(t.get());
  EXPECT_TRUE(st.IsUnavailable()) << st.ToString();
  EXPECT_EQ(table->CountVisible(1'000'000), 0u);
  // The failed record was trimmed back off the log, so the engine keeps
  // working and recovery cannot resurrect the transaction the client was
  // told failed.
  EXPECT_FALSE((*wal)->sealed());
  EXPECT_EQ((*wal)->num_records(), 0u);

  auto t2 = tm.Begin();
  ASSERT_TRUE(t2->Insert(table, MakeRow(2, "y", 0)).ok());
  EXPECT_TRUE(tm.Commit(t2.get()).ok());

  Catalog recovered;
  ASSERT_TRUE(
      recovered.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  auto stats = Wal::ReplayFile(path, &recovered);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->txns_applied, 1u);
  EXPECT_FALSE(stats->truncated_tail);
  Row out;
  EXPECT_FALSE(recovered.GetTable("t")->Lookup(
      EncodeKey(table->schema(), MakeRow(1, "", 0)), 1'000'000, &out));
  EXPECT_TRUE(recovered.GetTable("t")->Lookup(
      EncodeKey(table->schema(), MakeRow(2, "", 0)), 1'000'000, &out));
  std::remove(path.c_str());
}

TEST(WalTest, TornAppendLeavesReplayablePrefix) {
  Wal wal;
  Catalog source;
  ASSERT_TRUE(source.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  TransactionManager tm(&source, &wal);
  Table* table = source.GetTable("t");
  for (int i = 0; i < 2; ++i) {
    auto t = tm.Begin();
    ASSERT_TRUE(t->Insert(table, MakeRow(i, "pre", 0)).ok());
    ASSERT_TRUE(tm.Commit(t.get()).ok());
  }

  FailpointConfig cfg;
  cfg.status = Status::Unavailable("injected torn append");
  ScopedFailpoint armed("wal.append.torn", cfg);
  {
    auto t = tm.Begin();
    ASSERT_TRUE(t->Insert(table, MakeRow(99, "torn", 0)).ok());
    EXPECT_TRUE(tm.Commit(t.get()).IsUnavailable());
  }

  // The tear seals the log: a commit appended after the partial record
  // would be acknowledged but unreachable by replay, so it must fail.
  EXPECT_TRUE(wal.sealed());
  {
    auto t = tm.Begin();
    ASSERT_TRUE(t->Insert(table, MakeRow(100, "after", 0)).ok());
    EXPECT_TRUE(tm.Commit(t.get()).IsUnavailable());
  }

  // The half-written record is on "disk": replay applies the intact
  // prefix, reports the tear, and never applies the torn transaction.
  Catalog recovered;
  ASSERT_TRUE(
      recovered.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  auto stats = Wal::Replay(wal.buffer(), &recovered);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->txns_applied, 2u);
  EXPECT_TRUE(stats->truncated_tail);
  Row out;
  EXPECT_FALSE(recovered.GetTable("t")->Lookup(
      EncodeKey(table->schema(), MakeRow(99, "", 0)), 1'000'000, &out));
}

TEST(WalTest, ReplayUnknownTableFails) {
  Wal wal;
  ASSERT_TRUE(
      wal.LogCommit(1, 10, {WalOp{WalOp::kInsert, "nope", "", Row{}}}).ok());
  Catalog empty;
  auto stats = Wal::Replay(wal.buffer(), &empty);
  EXPECT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsNotFound());
}

// Order-independent rendering of every committed row of every table: two
// catalogs with identical committed state render identically.
std::map<std::string, std::vector<std::string>> Fingerprint(
    const Catalog& catalog, const std::vector<std::string>& tables) {
  std::map<std::string, std::vector<std::string>> out;
  for (const std::string& name : tables) {
    std::vector<std::string>& rows = out[name];
    catalog.GetTable(name)->ScanVisible(1'000'000, [&](const Row& row) {
      rows.push_back(RowToString(row));
    });
    std::sort(rows.begin(), rows.end());
  }
  return out;
}

// A multi-table log with inserts, updates, and deletes interleaved across
// tables — the shape parallel replay partitions.
void BuildMultiTableLog(Wal* wal, Catalog* catalog,
                        const std::vector<std::string>& tables) {
  for (const std::string& name : tables) {
    ASSERT_TRUE(
        catalog->CreateTable(name, TestSchema(), TableFormat::kColumn).ok());
  }
  TransactionManager tm(catalog, wal);
  for (int i = 0; i < 40; ++i) {
    Table* table = catalog->GetTable(tables[i % tables.size()]);
    auto t = tm.Begin();
    ASSERT_TRUE(t->Insert(table, MakeRow(i, "ins", i * 1.0)).ok());
    ASSERT_TRUE(tm.Commit(t.get()).ok());
    if (i % 3 == 0) {
      auto u = tm.Begin();
      ASSERT_TRUE(u->Update(table, MakeRow(i, "upd", i * 2.0)).ok());
      ASSERT_TRUE(tm.Commit(u.get()).ok());
    }
    if (i % 7 == 0) {
      auto d = tm.Begin();
      ASSERT_TRUE(d->Delete(table, MakeRow(i, "", 0)).ok());
      ASSERT_TRUE(tm.Commit(d.get()).ok());
    }
  }
}

TEST(WalTest, ParallelReplayMatchesSerialByteForByte) {
  const std::vector<std::string> tables = {"a", "b", "c", "d"};
  Wal wal;
  Catalog source;
  BuildMultiTableLog(&wal, &source, tables);
  const std::string log = wal.buffer();

  Catalog serial;
  for (const auto& n : tables) {
    ASSERT_TRUE(serial.CreateTable(n, TestSchema(), TableFormat::kColumn).ok());
  }
  auto sstats = Wal::Replay(log, &serial);
  ASSERT_TRUE(sstats.ok()) << sstats.status().ToString();

  Catalog parallel;
  for (const auto& n : tables) {
    ASSERT_TRUE(
        parallel.CreateTable(n, TestSchema(), TableFormat::kColumn).ok());
  }
  ThreadPool pool(4);
  auto pstats = Wal::ReplayParallel(log, &parallel, &pool);
  ASSERT_TRUE(pstats.ok()) << pstats.status().ToString();

  EXPECT_EQ(pstats->txns_applied, sstats->txns_applied);
  EXPECT_EQ(pstats->ops_applied, sstats->ops_applied);
  EXPECT_EQ(pstats->max_commit_ts, sstats->max_commit_ts);
  EXPECT_EQ(Fingerprint(parallel, tables), Fingerprint(serial, tables));
  EXPECT_EQ(Fingerprint(parallel, tables), Fingerprint(source, tables));
}

// Crash during recovery: replaying the same log AGAIN over the already-
// recovered catalog must change nothing (serial and parallel), because
// idempotent replay skips keyed ops the table has already seen.
TEST(WalTest, RecoveryIsIdempotentSerialAndParallel) {
  const std::vector<std::string> tables = {"a", "b", "c"};
  Wal wal;
  Catalog source;
  BuildMultiTableLog(&wal, &source, tables);
  const std::string log = wal.buffer();

  Wal::ReplayOptions idem;
  idem.idempotent = true;

  // Serial: first pass applies everything, second pass applies nothing.
  Catalog serial;
  for (const auto& n : tables) {
    ASSERT_TRUE(serial.CreateTable(n, TestSchema(), TableFormat::kColumn).ok());
  }
  auto first = Wal::Replay(log, &serial, idem);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_GT(first->ops_applied, 0u);
  auto fp_once = Fingerprint(serial, tables);
  auto second = Wal::Replay(log, &serial, idem);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->ops_applied, 0u) << "second pass must be a no-op";
  EXPECT_EQ(Fingerprint(serial, tables), fp_once);
  EXPECT_EQ(fp_once, Fingerprint(source, tables));

  // Parallel: same contract on the partitioned path.
  Catalog parallel;
  for (const auto& n : tables) {
    ASSERT_TRUE(
        parallel.CreateTable(n, TestSchema(), TableFormat::kColumn).ok());
  }
  ThreadPool pool(3);
  auto pfirst = Wal::ReplayParallel(log, &parallel, &pool, idem);
  ASSERT_TRUE(pfirst.ok()) << pfirst.status().ToString();
  auto psecond = Wal::ReplayParallel(log, &parallel, &pool, idem);
  ASSERT_TRUE(psecond.ok()) << psecond.status().ToString();
  EXPECT_EQ(psecond->ops_applied, 0u);
  EXPECT_EQ(Fingerprint(parallel, tables), fp_once);

  // A partial first pass then a full re-run also converges: replay half
  // the log, then the whole log, twice.
  Catalog partial;
  for (const auto& n : tables) {
    ASSERT_TRUE(
        partial.CreateTable(n, TestSchema(), TableFormat::kColumn).ok());
  }
  auto half = Wal::Replay(log.substr(0, log.size() / 2), &partial, idem);
  ASSERT_TRUE(half.ok());
  auto full = Wal::Replay(log, &partial, idem);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_EQ(Fingerprint(partial, tables), fp_once);
}

TEST(WalTest, ParallelReplayUnknownTableAppliesNothing) {
  Wal wal;
  ASSERT_TRUE(
      wal.LogCommit(1, 10, {WalOp{WalOp::kInsert, "t", "", MakeRow(1, "x", 0)}})
          .ok());
  ASSERT_TRUE(
      wal.LogCommit(2, 11, {WalOp{WalOp::kInsert, "nope", "", Row{}}}).ok());
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  ThreadPool pool(2);
  auto stats = Wal::ReplayParallel(wal.buffer(), &catalog, &pool);
  EXPECT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsNotFound());
  // The decode pass rejects before the apply pass runs.
  EXPECT_EQ(catalog.GetTable("t")->CountVisible(1'000'000), 0u);
}

TEST(WalTest, BatchFramesInterleaveWithRecordFrames) {
  Wal wal;
  ASSERT_TRUE(
      wal.LogCommit(1, 1, {WalOp{WalOp::kInsert, "t", "", MakeRow(1, "a", 0)}})
          .ok());
  std::vector<std::string> bodies;
  for (int i = 2; i <= 4; ++i) {
    bodies.push_back(Wal::SerializeCommitBody(
        i, i, {WalOp{WalOp::kInsert, "t", "", MakeRow(i, "b", 0)}}));
  }
  ASSERT_TRUE(wal.LogCommitBatch(bodies).ok());
  ASSERT_TRUE(
      wal.LogCommit(5, 5, {WalOp{WalOp::kInsert, "t", "", MakeRow(5, "c", 0)}})
          .ok());
  EXPECT_EQ(wal.num_records(), 5u);
  EXPECT_TRUE(Wal::IsWellFormed(wal.buffer()));

  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  auto stats = Wal::Replay(wal.buffer(), &catalog);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->txns_applied, 5u);
  EXPECT_EQ(stats->max_commit_ts, 5u);
  EXPECT_EQ(catalog.GetTable("t")->CountVisible(1'000'000), 5u);
}

TEST(WalTest, SizeTracksBufferWithoutCopying) {
  Wal wal;
  EXPECT_EQ(wal.size(), 0u);
  ASSERT_TRUE(
      wal.LogCommit(1, 1, {WalOp{WalOp::kInsert, "t", "", MakeRow(1, "a", 0)}})
          .ok());
  EXPECT_EQ(wal.size(), wal.buffer().size());
  ASSERT_TRUE(
      wal.LogCommit(2, 2, {WalOp{WalOp::kInsert, "t", "", MakeRow(2, "b", 0)}})
          .ok());
  EXPECT_EQ(wal.size(), wal.buffer().size());
}

TEST(WalTest, AbortedTransactionsNeverLogged) {
  Wal wal;
  Catalog source;
  ASSERT_TRUE(source.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  TransactionManager tm(&source, &wal);
  Table* table = source.GetTable("t");
  auto t = tm.Begin();
  ASSERT_TRUE(t->Insert(table, MakeRow(1, "x", 0)).ok());
  tm.Abort(t.get());
  EXPECT_EQ(wal.num_records(), 0u);
}

}  // namespace
}  // namespace oltap
