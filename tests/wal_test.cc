#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "storage/catalog.h"
#include "txn/transaction_manager.h"
#include "txn/wal.h"

namespace oltap {
namespace {

Schema TestSchema() {
  return SchemaBuilder()
      .AddInt64("id", false)
      .AddString("s")
      .AddDouble("d")
      .SetKey({"id"})
      .Build();
}

Row MakeRow(int64_t id, const std::string& s, double d) {
  return Row{Value::Int64(id), Value::String(s), Value::Double(d)};
}

TEST(WalTest, LogAndReplayRoundTrip) {
  Wal wal;
  Catalog source;
  ASSERT_TRUE(source.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  TransactionManager tm(&source, &wal);
  Table* table = source.GetTable("t");

  {
    auto t = tm.Begin();
    ASSERT_TRUE(t->Insert(table, MakeRow(1, "one", 1.5)).ok());
    ASSERT_TRUE(t->Insert(table, MakeRow(2, "two", 2.5)).ok());
    ASSERT_TRUE(tm.Commit(t.get()).ok());
  }
  {
    auto t = tm.Begin();
    ASSERT_TRUE(t->Update(table, MakeRow(1, "uno", 1.5)).ok());
    ASSERT_TRUE(t->Delete(table, MakeRow(2, "", 0)).ok());
    ASSERT_TRUE(tm.Commit(t.get()).ok());
  }
  EXPECT_EQ(wal.num_records(), 2u);

  // Replay into a fresh catalog; state must match.
  Catalog recovered;
  ASSERT_TRUE(
      recovered.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  auto stats = Wal::Replay(wal.buffer(), &recovered);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->txns_applied, 2u);
  EXPECT_EQ(stats->ops_applied, 4u);
  EXPECT_FALSE(stats->truncated_tail);

  Table* rt = recovered.GetTable("t");
  Timestamp late = 1'000'000;
  Row out;
  ASSERT_TRUE(rt->Lookup(EncodeKey(rt->schema(), MakeRow(1, "", 0)), late,
                         &out));
  EXPECT_EQ(out[1].AsString(), "uno");
  EXPECT_FALSE(rt->Lookup(EncodeKey(rt->schema(), MakeRow(2, "", 0)), late,
                          &out));
  EXPECT_EQ(rt->CountVisible(late), 1u);
}

TEST(WalTest, NullValuesSurviveRoundTrip) {
  Wal wal;
  Catalog source;
  ASSERT_TRUE(source.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  TransactionManager tm(&source, &wal);
  Table* table = source.GetTable("t");
  {
    auto t = tm.Begin();
    ASSERT_TRUE(t->Insert(table, Row{Value::Int64(1), Value::Null(ValueType::kString),
                                     Value::Null(ValueType::kDouble)})
                    .ok());
    ASSERT_TRUE(tm.Commit(t.get()).ok());
  }
  Catalog recovered;
  ASSERT_TRUE(
      recovered.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  ASSERT_TRUE(Wal::Replay(wal.buffer(), &recovered).ok());
  Row out;
  Table* rt = recovered.GetTable("t");
  ASSERT_TRUE(rt->Lookup(EncodeKey(rt->schema(), MakeRow(1, "", 0)),
                         1'000'000, &out));
  EXPECT_TRUE(out[1].is_null());
  EXPECT_TRUE(out[2].is_null());
}

TEST(WalTest, TornTailStopsReplayCleanly) {
  Wal wal;
  Catalog source;
  ASSERT_TRUE(source.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  TransactionManager tm(&source, &wal);
  Table* table = source.GetTable("t");
  for (int i = 0; i < 3; ++i) {
    auto t = tm.Begin();
    ASSERT_TRUE(t->Insert(table, MakeRow(i, "x", 0)).ok());
    ASSERT_TRUE(tm.Commit(t.get()).ok());
  }
  std::string data = wal.buffer();
  // Chop mid-record: replay applies the full records and reports the tear.
  std::string torn = data.substr(0, data.size() - 7);
  Catalog recovered;
  ASSERT_TRUE(
      recovered.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  auto stats = Wal::Replay(torn, &recovered);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->txns_applied, 2u);
  EXPECT_TRUE(stats->truncated_tail);
}

TEST(WalTest, CorruptRecordDetectedByChecksum) {
  Wal wal;
  ASSERT_TRUE(wal.LogCommit(1, 10,
                            {WalOp{WalOp::kInsert, "t",
                                   "", MakeRow(1, "x", 0)}})
                  .ok());
  std::string data = wal.buffer();
  data[data.size() / 2] ^= 0x40;  // flip a bit in the body
  Catalog recovered;
  ASSERT_TRUE(
      recovered.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  auto stats = Wal::Replay(data, &recovered);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->txns_applied, 0u);
  EXPECT_TRUE(stats->truncated_tail);
}

TEST(WalTest, FileBackedLogReplays) {
  std::string path = ::testing::TempDir() + "/oltap_wal_test.log";
  std::remove(path.c_str());
  {
    auto wal = Wal::OpenFile(path);
    ASSERT_TRUE(wal.ok());
    Catalog source;
    ASSERT_TRUE(
        source.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
    TransactionManager tm(&source, wal->get());
    Table* table = source.GetTable("t");
    auto t = tm.Begin();
    ASSERT_TRUE(t->Insert(table, MakeRow(9, "file", 9.9)).ok());
    ASSERT_TRUE(tm.Commit(t.get()).ok());
  }
  Catalog recovered;
  ASSERT_TRUE(
      recovered.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  auto stats = Wal::ReplayFile(path, &recovered);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->txns_applied, 1u);
  Table* rt = recovered.GetTable("t");
  Row out;
  EXPECT_TRUE(rt->Lookup(EncodeKey(rt->schema(), MakeRow(9, "", 0)),
                         1'000'000, &out));
  std::remove(path.c_str());
}

TEST(WalTest, FsyncOnCommitPathIsDurable) {
  std::string path = ::testing::TempDir() + "/oltap_wal_fsync_test.log";
  std::remove(path.c_str());
  {
    Wal::Options wopts;
    wopts.fsync_on_commit = true;
    auto wal = Wal::OpenFile(path, wopts);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    Catalog source;
    ASSERT_TRUE(
        source.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
    TransactionManager tm(&source, wal->get());
    Table* table = source.GetTable("t");
    for (int i = 0; i < 5; ++i) {
      auto t = tm.Begin();
      ASSERT_TRUE(t->Insert(table, MakeRow(i, "sync", i * 1.0)).ok());
      ASSERT_TRUE(tm.Commit(t.get()).ok());
    }
  }
  Catalog recovered;
  ASSERT_TRUE(
      recovered.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  auto stats = Wal::ReplayFile(path, &recovered);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->txns_applied, 5u);
  EXPECT_EQ(recovered.GetTable("t")->CountVisible(1'000'000), 5u);
  std::remove(path.c_str());
}

TEST(WalTest, InjectedAppendErrorFailsCommitCleanly) {
  Wal wal;
  Catalog source;
  ASSERT_TRUE(source.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  TransactionManager tm(&source, &wal);
  Table* table = source.GetTable("t");

  FailpointConfig cfg;
  cfg.status = Status::Unavailable("injected WAL write error");
  ScopedFailpoint armed("wal.append.error", cfg);
  {
    auto t = tm.Begin();
    ASSERT_TRUE(t->Insert(table, MakeRow(1, "lost", 0)).ok());
    Status st = tm.Commit(t.get());
    EXPECT_TRUE(st.IsUnavailable()) << st.ToString();
  }
  // The commit failed at the durability point: nothing was logged and
  // nothing is visible.
  EXPECT_EQ(wal.num_records(), 0u);
  EXPECT_EQ(table->CountVisible(1'000'000), 0u);

  // The engine keeps working once the fault passes (max_fires=1).
  {
    auto t = tm.Begin();
    ASSERT_TRUE(t->Insert(table, MakeRow(2, "kept", 0)).ok());
    ASSERT_TRUE(tm.Commit(t.get()).ok());
  }
  EXPECT_EQ(wal.num_records(), 1u);
  EXPECT_EQ(table->CountVisible(1'000'000), 1u);

  // Replay reflects only the surviving commit.
  Catalog recovered;
  ASSERT_TRUE(
      recovered.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  auto stats = Wal::Replay(wal.buffer(), &recovered);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->txns_applied, 1u);
  Row out;
  EXPECT_TRUE(recovered.GetTable("t")->Lookup(
      EncodeKey(table->schema(), MakeRow(2, "", 0)), 1'000'000, &out));
}

TEST(WalTest, InjectedFsyncErrorSurfacesThroughCommit) {
  std::string path = ::testing::TempDir() + "/oltap_wal_fsyncfail_test.log";
  std::remove(path.c_str());
  Wal::Options wopts;
  wopts.fsync_on_commit = true;
  auto wal = Wal::OpenFile(path, wopts);
  ASSERT_TRUE(wal.ok());
  Catalog source;
  ASSERT_TRUE(source.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  TransactionManager tm(&source, wal->get());
  Table* table = source.GetTable("t");

  FailpointConfig cfg;
  cfg.status = Status::Unavailable("injected fsync failure");
  ScopedFailpoint armed("wal.fsync.error", cfg);
  auto t = tm.Begin();
  ASSERT_TRUE(t->Insert(table, MakeRow(1, "x", 0)).ok());
  Status st = tm.Commit(t.get());
  EXPECT_TRUE(st.IsUnavailable()) << st.ToString();
  EXPECT_EQ(table->CountVisible(1'000'000), 0u);
  // The failed record was trimmed back off the log, so the engine keeps
  // working and recovery cannot resurrect the transaction the client was
  // told failed.
  EXPECT_FALSE((*wal)->sealed());
  EXPECT_EQ((*wal)->num_records(), 0u);

  auto t2 = tm.Begin();
  ASSERT_TRUE(t2->Insert(table, MakeRow(2, "y", 0)).ok());
  EXPECT_TRUE(tm.Commit(t2.get()).ok());

  Catalog recovered;
  ASSERT_TRUE(
      recovered.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  auto stats = Wal::ReplayFile(path, &recovered);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->txns_applied, 1u);
  EXPECT_FALSE(stats->truncated_tail);
  Row out;
  EXPECT_FALSE(recovered.GetTable("t")->Lookup(
      EncodeKey(table->schema(), MakeRow(1, "", 0)), 1'000'000, &out));
  EXPECT_TRUE(recovered.GetTable("t")->Lookup(
      EncodeKey(table->schema(), MakeRow(2, "", 0)), 1'000'000, &out));
  std::remove(path.c_str());
}

TEST(WalTest, TornAppendLeavesReplayablePrefix) {
  Wal wal;
  Catalog source;
  ASSERT_TRUE(source.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  TransactionManager tm(&source, &wal);
  Table* table = source.GetTable("t");
  for (int i = 0; i < 2; ++i) {
    auto t = tm.Begin();
    ASSERT_TRUE(t->Insert(table, MakeRow(i, "pre", 0)).ok());
    ASSERT_TRUE(tm.Commit(t.get()).ok());
  }

  FailpointConfig cfg;
  cfg.status = Status::Unavailable("injected torn append");
  ScopedFailpoint armed("wal.append.torn", cfg);
  {
    auto t = tm.Begin();
    ASSERT_TRUE(t->Insert(table, MakeRow(99, "torn", 0)).ok());
    EXPECT_TRUE(tm.Commit(t.get()).IsUnavailable());
  }

  // The tear seals the log: a commit appended after the partial record
  // would be acknowledged but unreachable by replay, so it must fail.
  EXPECT_TRUE(wal.sealed());
  {
    auto t = tm.Begin();
    ASSERT_TRUE(t->Insert(table, MakeRow(100, "after", 0)).ok());
    EXPECT_TRUE(tm.Commit(t.get()).IsUnavailable());
  }

  // The half-written record is on "disk": replay applies the intact
  // prefix, reports the tear, and never applies the torn transaction.
  Catalog recovered;
  ASSERT_TRUE(
      recovered.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  auto stats = Wal::Replay(wal.buffer(), &recovered);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->txns_applied, 2u);
  EXPECT_TRUE(stats->truncated_tail);
  Row out;
  EXPECT_FALSE(recovered.GetTable("t")->Lookup(
      EncodeKey(table->schema(), MakeRow(99, "", 0)), 1'000'000, &out));
}

TEST(WalTest, ReplayUnknownTableFails) {
  Wal wal;
  ASSERT_TRUE(
      wal.LogCommit(1, 10, {WalOp{WalOp::kInsert, "nope", "", Row{}}}).ok());
  Catalog empty;
  auto stats = Wal::Replay(wal.buffer(), &empty);
  EXPECT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsNotFound());
}

// Order-independent rendering of every committed row of every table: two
// catalogs with identical committed state render identically.
std::map<std::string, std::vector<std::string>> Fingerprint(
    const Catalog& catalog, const std::vector<std::string>& tables) {
  std::map<std::string, std::vector<std::string>> out;
  for (const std::string& name : tables) {
    std::vector<std::string>& rows = out[name];
    catalog.GetTable(name)->ScanVisible(1'000'000, [&](const Row& row) {
      rows.push_back(RowToString(row));
    });
    std::sort(rows.begin(), rows.end());
  }
  return out;
}

// A multi-table log with inserts, updates, and deletes interleaved across
// tables — the shape parallel replay partitions.
void BuildMultiTableLog(Wal* wal, Catalog* catalog,
                        const std::vector<std::string>& tables) {
  for (const std::string& name : tables) {
    ASSERT_TRUE(
        catalog->CreateTable(name, TestSchema(), TableFormat::kColumn).ok());
  }
  TransactionManager tm(catalog, wal);
  for (int i = 0; i < 40; ++i) {
    Table* table = catalog->GetTable(tables[i % tables.size()]);
    auto t = tm.Begin();
    ASSERT_TRUE(t->Insert(table, MakeRow(i, "ins", i * 1.0)).ok());
    ASSERT_TRUE(tm.Commit(t.get()).ok());
    if (i % 3 == 0) {
      auto u = tm.Begin();
      ASSERT_TRUE(u->Update(table, MakeRow(i, "upd", i * 2.0)).ok());
      ASSERT_TRUE(tm.Commit(u.get()).ok());
    }
    if (i % 7 == 0) {
      auto d = tm.Begin();
      ASSERT_TRUE(d->Delete(table, MakeRow(i, "", 0)).ok());
      ASSERT_TRUE(tm.Commit(d.get()).ok());
    }
  }
}

TEST(WalTest, ParallelReplayMatchesSerialByteForByte) {
  const std::vector<std::string> tables = {"a", "b", "c", "d"};
  Wal wal;
  Catalog source;
  BuildMultiTableLog(&wal, &source, tables);
  const std::string log = wal.buffer();

  Catalog serial;
  for (const auto& n : tables) {
    ASSERT_TRUE(serial.CreateTable(n, TestSchema(), TableFormat::kColumn).ok());
  }
  auto sstats = Wal::Replay(log, &serial);
  ASSERT_TRUE(sstats.ok()) << sstats.status().ToString();

  Catalog parallel;
  for (const auto& n : tables) {
    ASSERT_TRUE(
        parallel.CreateTable(n, TestSchema(), TableFormat::kColumn).ok());
  }
  ThreadPool pool(4);
  auto pstats = Wal::ReplayParallel(log, &parallel, &pool);
  ASSERT_TRUE(pstats.ok()) << pstats.status().ToString();

  EXPECT_EQ(pstats->txns_applied, sstats->txns_applied);
  EXPECT_EQ(pstats->ops_applied, sstats->ops_applied);
  EXPECT_EQ(pstats->max_commit_ts, sstats->max_commit_ts);
  EXPECT_EQ(Fingerprint(parallel, tables), Fingerprint(serial, tables));
  EXPECT_EQ(Fingerprint(parallel, tables), Fingerprint(source, tables));
}

// Crash during recovery: replaying the same log AGAIN over the already-
// recovered catalog must change nothing (serial and parallel), because
// idempotent replay skips keyed ops the table has already seen.
TEST(WalTest, RecoveryIsIdempotentSerialAndParallel) {
  const std::vector<std::string> tables = {"a", "b", "c"};
  Wal wal;
  Catalog source;
  BuildMultiTableLog(&wal, &source, tables);
  const std::string log = wal.buffer();

  Wal::ReplayOptions idem;
  idem.idempotent = true;

  // Serial: first pass applies everything, second pass applies nothing.
  Catalog serial;
  for (const auto& n : tables) {
    ASSERT_TRUE(serial.CreateTable(n, TestSchema(), TableFormat::kColumn).ok());
  }
  auto first = Wal::Replay(log, &serial, idem);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_GT(first->ops_applied, 0u);
  auto fp_once = Fingerprint(serial, tables);
  auto second = Wal::Replay(log, &serial, idem);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->ops_applied, 0u) << "second pass must be a no-op";
  EXPECT_EQ(Fingerprint(serial, tables), fp_once);
  EXPECT_EQ(fp_once, Fingerprint(source, tables));

  // Parallel: same contract on the partitioned path.
  Catalog parallel;
  for (const auto& n : tables) {
    ASSERT_TRUE(
        parallel.CreateTable(n, TestSchema(), TableFormat::kColumn).ok());
  }
  ThreadPool pool(3);
  auto pfirst = Wal::ReplayParallel(log, &parallel, &pool, idem);
  ASSERT_TRUE(pfirst.ok()) << pfirst.status().ToString();
  auto psecond = Wal::ReplayParallel(log, &parallel, &pool, idem);
  ASSERT_TRUE(psecond.ok()) << psecond.status().ToString();
  EXPECT_EQ(psecond->ops_applied, 0u);
  EXPECT_EQ(Fingerprint(parallel, tables), fp_once);

  // A partial first pass then a full re-run also converges: replay half
  // the log, then the whole log, twice.
  Catalog partial;
  for (const auto& n : tables) {
    ASSERT_TRUE(
        partial.CreateTable(n, TestSchema(), TableFormat::kColumn).ok());
  }
  auto half = Wal::Replay(log.substr(0, log.size() / 2), &partial, idem);
  ASSERT_TRUE(half.ok());
  auto full = Wal::Replay(log, &partial, idem);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_EQ(Fingerprint(partial, tables), fp_once);
}

TEST(WalTest, ParallelReplayUnknownTableAppliesNothing) {
  Wal wal;
  ASSERT_TRUE(
      wal.LogCommit(1, 10, {WalOp{WalOp::kInsert, "t", "", MakeRow(1, "x", 0)}})
          .ok());
  ASSERT_TRUE(
      wal.LogCommit(2, 11, {WalOp{WalOp::kInsert, "nope", "", Row{}}}).ok());
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  ThreadPool pool(2);
  auto stats = Wal::ReplayParallel(wal.buffer(), &catalog, &pool);
  EXPECT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsNotFound());
  // The decode pass rejects before the apply pass runs.
  EXPECT_EQ(catalog.GetTable("t")->CountVisible(1'000'000), 0u);
}

TEST(WalTest, BatchFramesInterleaveWithRecordFrames) {
  Wal wal;
  ASSERT_TRUE(
      wal.LogCommit(1, 1, {WalOp{WalOp::kInsert, "t", "", MakeRow(1, "a", 0)}})
          .ok());
  std::vector<std::string> bodies;
  for (int i = 2; i <= 4; ++i) {
    bodies.push_back(Wal::SerializeCommitBody(
        i, i, {WalOp{WalOp::kInsert, "t", "", MakeRow(i, "b", 0)}}));
  }
  ASSERT_TRUE(wal.LogCommitBatch(bodies).ok());
  ASSERT_TRUE(
      wal.LogCommit(5, 5, {WalOp{WalOp::kInsert, "t", "", MakeRow(5, "c", 0)}})
          .ok());
  EXPECT_EQ(wal.num_records(), 5u);
  EXPECT_TRUE(Wal::IsWellFormed(wal.buffer()));

  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  auto stats = Wal::Replay(wal.buffer(), &catalog);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->txns_applied, 5u);
  EXPECT_EQ(stats->max_commit_ts, 5u);
  EXPECT_EQ(catalog.GetTable("t")->CountVisible(1'000'000), 5u);
}

TEST(WalTest, SizeTracksBufferWithoutCopying) {
  Wal wal;
  EXPECT_EQ(wal.size(), 0u);
  ASSERT_TRUE(
      wal.LogCommit(1, 1, {WalOp{WalOp::kInsert, "t", "", MakeRow(1, "a", 0)}})
          .ok());
  EXPECT_EQ(wal.size(), wal.buffer().size());
  ASSERT_TRUE(
      wal.LogCommit(2, 2, {WalOp{WalOp::kInsert, "t", "", MakeRow(2, "b", 0)}})
          .ok());
  EXPECT_EQ(wal.size(), wal.buffer().size());
}

TEST(WalTest, AbortedTransactionsNeverLogged) {
  Wal wal;
  Catalog source;
  ASSERT_TRUE(source.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  TransactionManager tm(&source, &wal);
  Table* table = source.GetTable("t");
  auto t = tm.Begin();
  ASSERT_TRUE(t->Insert(table, MakeRow(1, "x", 0)).ok());
  tm.Abort(t.get());
  EXPECT_EQ(wal.num_records(), 0u);
}

// --- Segmentation & truncation ------------------------------------------

// Appends `n` single-insert commits with commit_ts 1..n.
void AppendCommits(Wal* wal, int64_t n, int64_t first_id = 1) {
  for (int64_t i = 0; i < n; ++i) {
    int64_t id = first_id + i;
    ASSERT_TRUE(wal->LogCommit(static_cast<uint64_t>(id),
                               static_cast<Timestamp>(id),
                               {WalOp{WalOp::kInsert, "t", "",
                                      MakeRow(id, "seg", 0.5)}})
                    .ok());
  }
}

TEST(WalTest, SegmentRotationPreservesReplayByteForByte) {
  Wal::Options options;
  options.segment_bytes = 1;  // rotate after every frame
  Wal segmented(options);
  Wal flat;
  AppendCommits(&segmented, 8);
  AppendCommits(&flat, 8);

  // Every append seals and rotates, so 8 commits leave 8 sealed segments
  // plus the (empty) active one.
  EXPECT_EQ(segmented.num_segments(), 9u);
  // Rotation happens at frame boundaries, so the concatenated retained
  // bytes equal the unsegmented log exactly.
  EXPECT_EQ(segmented.buffer(), flat.buffer());
  EXPECT_EQ(segmented.size(), flat.size());

  // Oldest-first, with monotone ids and commit-ts high-water marks.
  std::vector<Wal::SegmentInfo> segs = segmented.Segments();
  ASSERT_EQ(segs.size(), 9u);
  for (size_t i = 0; i < segs.size(); ++i) {
    EXPECT_EQ(segs[i].id, i);
  }
  // Sealed segments carry commit_ts 1..8; the empty active segment has no
  // high-water mark yet.
  for (size_t i = 0; i + 1 < segs.size(); ++i) {
    EXPECT_EQ(segs[i].max_commit_ts, i + 1);
  }
  EXPECT_EQ(segs.back().max_commit_ts, 0u);
}

TEST(WalTest, TruncateBelowDropsOnlyWhollyCoveredSealedSegments) {
  Wal::Options options;
  options.segment_bytes = 1;
  Wal wal(options);
  AppendCommits(&wal, 6);
  ASSERT_EQ(wal.num_segments(), 7u);  // 6 sealed + empty active
  const size_t full_size = wal.size();

  // Horizon 3 covers sealed segments with max_commit_ts 1, 2, 3.
  uint64_t dropped = 0;
  ASSERT_TRUE(wal.TruncateBelow(3, &dropped).ok());
  EXPECT_GT(dropped, 0u);
  EXPECT_EQ(wal.num_segments(), 4u);
  EXPECT_EQ(wal.size(), full_size - dropped);
  EXPECT_EQ(wal.truncated_bytes(), dropped);
  EXPECT_EQ(wal.Segments().front().max_commit_ts, 4u);

  // The retained tail replays cleanly on top of a state that already holds
  // everything at or below the horizon (checkpoint recovery's contract).
  Catalog catalog;
  ASSERT_TRUE(
      catalog.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  auto stats = Wal::Replay(wal.buffer(), &catalog);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->txns_applied, 3u);  // commits 4, 5, 6
  EXPECT_EQ(stats->max_commit_ts, 6u);

  // The active segment never drops, no matter the horizon.
  ASSERT_TRUE(wal.TruncateBelow(kMaxTimestamp, &dropped).ok());
  EXPECT_EQ(wal.num_segments(), 1u);
  AppendCommits(&wal, 1, 100);  // still appends fine
  EXPECT_FALSE(wal.sealed());
  EXPECT_GT(wal.size(), 0u);
}

TEST(WalTest, TruncateBelowKeepsSegmentsAboveHorizon) {
  Wal::Options options;
  options.segment_bytes = 1;
  Wal wal(options);
  AppendCommits(&wal, 4);
  const size_t before = wal.size();
  // Horizon below every sealed segment's high-water mark: nothing drops.
  uint64_t dropped = 99;
  ASSERT_TRUE(wal.TruncateBelow(0, &dropped).ok());
  EXPECT_EQ(dropped, 0u);
  EXPECT_EQ(wal.size(), before);
  EXPECT_EQ(wal.num_segments(), 5u);
}

TEST(WalTest, TruncateFailpointFailsCleanlyDroppingNothing) {
  Wal::Options options;
  options.segment_bytes = 1;
  Wal wal(options);
  AppendCommits(&wal, 4);
  const size_t before = wal.size();
  const size_t before_segments = wal.num_segments();
  {
    FailpointConfig cfg;
    cfg.status = Status::Unavailable("injected: truncate fault");
    ScopedFailpoint armed("wal.truncate.error", cfg);
    uint64_t dropped = 99;
    Status st = wal.TruncateBelow(kMaxTimestamp, &dropped);
    EXPECT_TRUE(st.IsUnavailable()) << st.ToString();
    EXPECT_EQ(dropped, 0u);
  }
  // The failure dropped nothing — the full log is still retained and a
  // later truncation succeeds.
  EXPECT_EQ(wal.size(), before);
  EXPECT_EQ(wal.num_segments(), before_segments);
  ASSERT_TRUE(wal.TruncateBelow(2).ok());
  EXPECT_EQ(wal.num_segments(), before_segments - 2);
}

TEST(WalTest, ExplicitSealStopsAppends) {
  Wal wal;
  AppendCommits(&wal, 2);
  EXPECT_FALSE(wal.sealed());
  wal.Seal();
  EXPECT_TRUE(wal.sealed());
  Status st = wal.LogCommit(
      9, 9, {WalOp{WalOp::kInsert, "t", "", MakeRow(9, "late", 0)}});
  EXPECT_TRUE(st.IsUnavailable()) << st.ToString();
  // The sealed log still replays its pre-seal contents.
  Catalog catalog;
  ASSERT_TRUE(
      catalog.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  auto stats = Wal::Replay(wal.buffer(), &catalog);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->txns_applied, 2u);
}

TEST(WalTest, SetSegmentBytesRotatesLiveLog) {
  Wal wal;  // unbounded: one active segment
  AppendCommits(&wal, 4);
  EXPECT_EQ(wal.num_segments(), 1u);
  wal.set_segment_bytes(1);  // active segment is already over the limit
  EXPECT_EQ(wal.num_segments(), 2u);
  AppendCommits(&wal, 1, 50);
  EXPECT_EQ(wal.num_segments(), 3u);
  wal.set_segment_bytes(0);  // rotation off again
  AppendCommits(&wal, 3, 60);
  EXPECT_EQ(wal.num_segments(), 3u);
}

TEST(WalTest, FileBackedRotationCreatesAndTruncatesSegmentFiles) {
  std::string path = ::testing::TempDir() + "/oltap_wal_seg.log";
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
  std::remove((path + ".2").c_str());
  std::remove((path + ".3").c_str());
  {
    Wal::Options options;
    options.segment_bytes = 1;
    auto opened = Wal::OpenFile(path, options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    Wal* wal = opened->get();
    AppendCommits(wal, 3);
    ASSERT_EQ(wal->num_segments(), 4u);  // 3 sealed + empty active

    // Segment 0 lives at the base path; later segments at "<path>.<id>".
    auto exists = [](const std::string& p) {
      std::FILE* f = std::fopen(p.c_str(), "rb");
      if (f != nullptr) std::fclose(f);
      return f != nullptr;
    };
    EXPECT_TRUE(exists(path));
    EXPECT_TRUE(exists(path + ".1"));
    EXPECT_TRUE(exists(path + ".2"));

    // Truncation removes the dropped segments' files.
    ASSERT_TRUE(wal->TruncateBelow(2).ok());
    EXPECT_FALSE(exists(path));
    EXPECT_FALSE(exists(path + ".1"));
    EXPECT_TRUE(exists(path + ".2"));

    // The retained tail replays from the in-memory mirror and from disk
    // identically.
    Catalog catalog;
    ASSERT_TRUE(
        catalog.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
    auto stats = Wal::Replay(wal->buffer(), &catalog);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->txns_applied, 1u);
    EXPECT_EQ(stats->max_commit_ts, 3u);
  }
  std::remove((path + ".2").c_str());
  std::remove((path + ".3").c_str());
}

// One transaction may write the same key several times (TPC-C NewOrder
// drawing a duplicate item updates that stock row twice); all its ops
// share one commit timestamp, so idempotent replay must apply the NET
// effect instead of skipping everything after the first same-ts write.
TEST(WalTest, IdempotentReplayAppliesNetOfDuplicateKeyWrites) {
  Wal wal;
  Catalog source;
  ASSERT_TRUE(source.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  TransactionManager tm(&source, &wal);
  Table* table = source.GetTable("t");

  {
    auto t = tm.Begin();
    ASSERT_TRUE(t->Insert(table, MakeRow(1, "base", 1.0)).ok());
    ASSERT_TRUE(tm.Commit(t.get()).ok());
  }
  {
    // Two updates to the same key in one transaction: live state holds
    // the second.
    auto t = tm.Begin();
    ASSERT_TRUE(t->Update(table, MakeRow(1, "first", 2.0)).ok());
    ASSERT_TRUE(t->Update(table, MakeRow(1, "second", 3.0)).ok());
    ASSERT_TRUE(tm.Commit(t.get()).ok());
  }
  {
    // Insert then update in one transaction: net is an insert of the
    // final row.
    auto t = tm.Begin();
    ASSERT_TRUE(t->Insert(table, MakeRow(2, "new", 1.0)).ok());
    ASSERT_TRUE(t->Update(table, MakeRow(2, "newer", 2.0)).ok());
    ASSERT_TRUE(tm.Commit(t.get()).ok());
  }
  {
    // Insert then delete: the row never commits at all.
    auto t = tm.Begin();
    ASSERT_TRUE(t->Insert(table, MakeRow(3, "gone", 1.0)).ok());
    ASSERT_TRUE(t->Delete(table, MakeRow(3, "gone", 1.0)).ok());
    ASSERT_TRUE(tm.Commit(t.get()).ok());
  }

  for (bool idempotent : {false, true}) {
    Catalog catalog;
    ASSERT_TRUE(
        catalog.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
    Wal::ReplayOptions options;
    options.idempotent = idempotent;
    auto stats = Wal::Replay(wal.buffer(), &catalog, options);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();

    Table* replayed = catalog.GetTable("t");
    EXPECT_EQ(replayed->CountVisible(1'000'000), 2u) << idempotent;
    Row row;
    ASSERT_TRUE(replayed->Lookup(EncodeKey(replayed->schema(),
                                           MakeRow(1, "", 0)),
                                 1'000'000, &row));
    EXPECT_EQ(row[1].AsString(), "second") << "idempotent=" << idempotent;
    ASSERT_TRUE(replayed->Lookup(EncodeKey(replayed->schema(),
                                           MakeRow(2, "", 0)),
                                 1'000'000, &row));
    EXPECT_EQ(row[1].AsString(), "newer") << "idempotent=" << idempotent;
  }
}

TEST(WalTest, PeekBodyCommitTsReadsSerializedBody) {
  std::string body = Wal::SerializeCommitBody(
      7, 42, {WalOp{WalOp::kInsert, "t", "", MakeRow(1, "x", 0)}});
  EXPECT_EQ(Wal::PeekBodyCommitTs(body), 42u);
  EXPECT_EQ(Wal::PeekBodyCommitTs(std::string()), 0u);
}

}  // namespace
}  // namespace oltap
