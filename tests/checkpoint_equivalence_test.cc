#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/row.h"
#include "txn/checkpoint.h"
#include "txn/checkpoint_daemon.h"
#include "workload/chbench.h"
#include "workload/driver.h"

namespace oltap {
namespace {

constexpr Timestamp kFarFuture = 1'000'000'000;

const char* kTables[] = {"warehouse", "district",  "customer",
                         "history",   "neworder",  "orders",
                         "orderline", "item",      "stock"};

// Order-independent rendering of every committed row of every TPC-C
// table: identical committed state => identical fingerprint.
std::map<std::string, std::vector<std::string>> Fingerprint(Database* db) {
  std::map<std::string, std::vector<std::string>> out;
  for (const char* name : kTables) {
    const Table* table = db->catalog()->GetTable(name);
    std::vector<std::string>& rows = out[name];
    table->ScanVisible(kFarFuture, [&](const Row& row) {
      rows.push_back(RowToString(row));
    });
    std::sort(rows.begin(), rows.end());
  }
  return out;
}

void ExpectSameState(Database* got, Database* want, const std::string& label) {
  auto a = Fingerprint(got);
  auto b = Fingerprint(want);
  for (const char* name : kTables) {
    ASSERT_EQ(a[name].size(), b[name].size())
        << label << ": row count diverges in " << name;
    for (size_t i = 0; i < a[name].size(); ++i) {
      ASSERT_EQ(a[name][i], b[name][i])
          << label << ": row " << i << " diverges in " << name;
    }
  }
}

CHConfig TinyConfig() {
  CHConfig config;
  config.warehouses = 2;
  config.districts_per_warehouse = 2;
  config.customers_per_district = 10;
  config.items = 50;
  config.initial_orders_per_district = 5;
  return config;
}

// A checkpoint taken in the middle of a concurrent TPC-C run must not
// change what recovery produces: every retained image + the (untruncated)
// WAL, and the WAL alone, all land on byte-identical committed state.
TEST(CheckpointEquivalenceTest, CheckpointedRecoveryMatchesFullReplay) {
  Wal wal;
  Database db(&wal);
  CHBenchmark bench(&db, TinyConfig());
  ASSERT_TRUE(bench.CreateTables().ok());
  ASSERT_TRUE(bench.Load().ok());

  DriverOptions opts;
  opts.oltp_workers = 4;
  opts.olap_workers = 1;
  opts.ops_per_worker = 150;
  opts.seed = 23;
  opts.merge_delta_threshold = 128;
  opts.merge_interval_ms = 1;
  opts.group_commit = true;  // checkpoints ride over the group-commit path
  opts.run_checkpoint_daemon = true;
  opts.checkpoint_interval_us = 2'000;
  // Keep the whole log so the same WAL recovers with and without a
  // checkpoint — the comparison this test exists for.
  opts.checkpoint_truncate_wal = false;

  ConcurrentDriver driver(&bench, opts);
  DriverReport report = driver.Run();
  ASSERT_FALSE(report.aborted) << report.abort_reason;
  ASSERT_GE(report.checkpoints, 1u) << "driver finished before any round";
  EXPECT_EQ(report.wal_truncated_bytes, 0u);

  CheckpointStore store = db.checkpointer()->StoreCopy();
  ASSERT_FALSE(store.images.empty());

  // Reference: recovery with no checkpoint at all. The bulk load bypasses
  // the WAL, so a full replay starts from a re-loaded benchmark.
  Database full;
  {
    CHBenchmark fresh(&full, TinyConfig());
    ASSERT_TRUE(fresh.CreateTables().ok());
    ASSERT_TRUE(fresh.Load().ok());
    auto stats = full.RecoverFromWal(wal.buffer());
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  }
  ExpectSameState(&full, &db, "full replay vs live");

  // Every retained image is a valid starting point: image + tail ==
  // full replay, byte for byte, for each chain position.
  for (const CheckpointStore::Image& img : store.images) {
    CheckpointStore one;
    one.images.push_back(img);
    CheckpointManifestEntry e;
    e.id = img.id;
    e.ts = img.ts;
    e.checksum = CheckpointChecksum(img.data);
    e.bytes = img.data.size();
    one.manifest = SerializeManifest({e});

    Database recovered;  // empty catalog: the image carries the schemas
    auto rec = recovered.RecoverFromCheckpointStore(one, wal.buffer());
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    EXPECT_EQ(rec->checkpoint_id, img.id);
    EXPECT_EQ(rec->checkpoint_ts, img.ts);
    ExpectSameState(&recovered, &db,
                    "image " + std::to_string(img.id) + " + tail");
  }

  // And the daemon's own store (newest image via the manifest) agrees.
  Database newest;
  auto rec = newest.RecoverFromCheckpointStore(store, wal.buffer());
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->fallbacks, 0u);
  ExpectSameState(&newest, &db, "manifest-selected image + tail");
}

// With truncation ON, the retained tail after the run still completes
// recovery from the newest checkpoint — truncation never outruns what the
// chain can serve.
TEST(CheckpointEquivalenceTest, TruncatedWalStillRecoversFromChain) {
  Wal::Options wopts;
  wopts.segment_bytes = 16 * 1024;
  Wal wal(wopts);
  Database db(&wal);
  CHBenchmark bench(&db, TinyConfig());
  ASSERT_TRUE(bench.CreateTables().ok());
  ASSERT_TRUE(bench.Load().ok());

  DriverOptions opts;
  opts.oltp_workers = 4;
  opts.olap_workers = 0;
  opts.ops_per_worker = 150;
  opts.seed = 29;
  opts.merge_delta_threshold = 128;
  opts.merge_interval_ms = 1;
  opts.run_checkpoint_daemon = true;
  opts.checkpoint_interval_us = 2'000;
  opts.checkpoint_truncate_wal = true;

  ConcurrentDriver driver(&bench, opts);
  DriverReport report = driver.Run();
  ASSERT_FALSE(report.aborted) << report.abort_reason;
  ASSERT_GE(report.checkpoints, 1u);

  Database recovered;
  auto rec = recovered.RecoverFromCheckpointStore(
      db.checkpointer()->StoreCopy(), wal.buffer());
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  ExpectSameState(&recovered, &db, "truncated tail");
}

}  // namespace
}  // namespace oltap
