#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "sched/merge_daemon.h"
#include "sql/session.h"

namespace oltap {
namespace {

TEST(MergeDaemonTest, RunOnceMergesOverThreshold) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE a (id BIGINT NOT NULL, v BIGINT, "
                         "PRIMARY KEY (id)) FORMAT COLUMN")
                  .ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE b (id BIGINT NOT NULL, v BIGINT, "
                         "PRIMARY KEY (id)) FORMAT COLUMN")
                  .ok());
  // a: 100 delta rows; b: 5 delta rows.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db.Execute("INSERT INTO a VALUES (" + std::to_string(i) +
                           ", 1)")
                    .ok());
  }
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(db.Execute("INSERT INTO b VALUES (" + std::to_string(i) +
                           ", 1)")
                    .ok());
  }
  MergeDaemon::Options opts;
  opts.delta_row_threshold = 50;
  opts.autostart = false;  // drive RunOnce deterministically
  MergeDaemon daemon(db.catalog(), db.txn_manager(), opts);

  EXPECT_EQ(daemon.RunOnce(), 1u);  // only `a` crossed the threshold
  EXPECT_EQ(db.catalog()->GetTable("a")->column_table()->delta_size(), 0u);
  EXPECT_EQ(db.catalog()->GetTable("b")->column_table()->delta_size(), 5u);
  EXPECT_EQ(daemon.RunOnce(), 0u);  // idempotent once merged
}

TEST(MergeDaemonTest, BackgroundThreadMergesAutomatically) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (id BIGINT NOT NULL, v BIGINT, "
                         "PRIMARY KEY (id)) FORMAT COLUMN")
                  .ok());
  MergeDaemon::Options opts;
  opts.delta_row_threshold = 10;
  opts.interval_ms = 5;
  MergeDaemon daemon(db.catalog(), db.txn_manager(), opts);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                           ", 1)")
                    .ok());
  }
  // The daemon should fold the delta down within a few ticks.
  for (int tries = 0; tries < 100; ++tries) {
    if (db.catalog()->GetTable("t")->column_table()->delta_size() < 10) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  daemon.Stop();
  EXPECT_GT(daemon.merges_performed(), 0u);
  EXPECT_LT(db.catalog()->GetTable("t")->column_table()->delta_size(), 10u);
  // Data intact.
  auto r = db.Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt64(), 200);
}

TEST(MergeDaemonTest, RespectsActiveSnapshots) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (id BIGINT NOT NULL, v BIGINT, "
                         "PRIMARY KEY (id)) FORMAT COLUMN")
                  .ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                           ", 1)")
                    .ok());
  }
  auto long_txn = db.txn_manager()->Begin();
  ASSERT_TRUE(db.Execute("DELETE FROM t WHERE id < 50").ok());

  MergeDaemon::Options opts;
  opts.delta_row_threshold = 1;
  opts.autostart = false;
  MergeDaemon daemon(db.catalog(), db.txn_manager(), opts);
  daemon.RunOnce();

  // The old snapshot still sees all 100 rows despite the merge.
  auto old_view = db.ExecuteIn(long_txn.get(), "SELECT COUNT(*) FROM t");
  ASSERT_TRUE(old_view.ok());
  EXPECT_EQ(old_view->rows[0][0].AsInt64(), 100);
  auto fresh = db.Execute("SELECT COUNT(*) FROM t");
  EXPECT_EQ(fresh->rows[0][0].AsInt64(), 50);
  db.txn_manager()->Commit(long_txn.get());
}

}  // namespace
}  // namespace oltap
