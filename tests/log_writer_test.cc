#include "txn/log_writer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "storage/catalog.h"
#include "txn/transaction_manager.h"
#include "txn/wal.h"

namespace oltap {
namespace {

constexpr Timestamp kFarFuture = 1'000'000;

Schema TestSchema() {
  return SchemaBuilder()
      .AddInt64("id", false)
      .AddString("s")
      .SetKey({"id"})
      .Build();
}

Row MakeRow(int64_t id) {
  return Row{Value::Int64(id), Value::String("v" + std::to_string(id))};
}

std::string InsertBody(uint64_t txn_id, Timestamp ts, int64_t id) {
  WalOp op;
  op.kind = WalOp::kInsert;
  op.table = "t";
  op.row = MakeRow(id);
  return Wal::SerializeCommitBody(txn_id, ts, {op});
}

std::unique_ptr<Catalog> FreshCatalog() {
  auto catalog = std::make_unique<Catalog>();
  EXPECT_TRUE(
      catalog->CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  return catalog;
}

// Failpoint hygiene: no test may leak an armed site.
class LogWriterTest : public ::testing::Test {
 protected:
  void TearDown() override {
    EXPECT_TRUE(FailpointRegistry::Get().ActiveList().empty());
    FailpointRegistry::Get().DisableAll();
  }
};

// Submissions inside one persist interval land in ONE batch frame: one
// checksum, one entry in wal.batches — and replay still sees every commit.
TEST_F(LogWriterTest, GroupsSubmissionsIntoOneBatch) {
  Wal wal;
  LogWriter::Options opts;
  opts.max_batch = 8;
  opts.persist_interval_us = 500'000;  // generous window; the 8th submit fills
                                       // the batch and fires it early
  LogWriter writer(&wal, opts);

  std::vector<std::future<Status>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(writer.SubmitCommit(InsertBody(i + 1, i + 1, i)));
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());

  EXPECT_EQ(wal.num_records(), 8u);
  LogWriter::Stats stats = writer.stats();
  EXPECT_EQ(stats.commits, 8u);
  EXPECT_EQ(stats.batches, 1u) << "one full batch, one frame";

  auto catalog = FreshCatalog();
  auto replay = Wal::Replay(wal.buffer(), catalog.get());
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->txns_applied, 8u);
  EXPECT_FALSE(replay->truncated_tail);
  EXPECT_EQ(catalog->GetTable("t")->CountVisible(kFarFuture), 8u);
}

// A tear at a batch boundary fails EVERY commit in the batch — the single
// batch checksum means replay applies none of them, so no unacked prefix
// can resurrect — and the log seals.
TEST_F(LogWriterTest, TornBatchFailsEveryCommitNeverAPrefix) {
  Wal wal;
  LogWriter::Options opts;
  opts.max_batch = 4;
  opts.persist_interval_us = 500'000;
  LogWriter writer(&wal, opts);

  FailpointConfig cfg;
  cfg.status = Status::Unavailable("injected torn batch");
  ScopedFailpoint armed("wal.batch.torn", cfg);

  std::vector<std::future<Status>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(writer.SubmitCommit(InsertBody(i + 1, i + 1, i)));
  }
  for (auto& f : futures) {
    Status st = f.get();
    EXPECT_TRUE(st.IsUnavailable()) << st.ToString();
  }
  EXPECT_TRUE(wal.sealed());
  EXPECT_EQ(wal.num_records(), 0u);

  // The half-written batch is the crash artifact: replay must stop at it
  // and apply nothing.
  auto catalog = FreshCatalog();
  auto replay = Wal::Replay(wal.buffer(), catalog.get());
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->txns_applied, 0u);
  EXPECT_TRUE(replay->truncated_tail);
  EXPECT_EQ(catalog->GetTable("t")->CountVisible(kFarFuture), 0u);

  // The sealed log deterministically fails later submissions — the writer
  // itself stays up.
  EXPECT_TRUE(writer.running());
  Status st = writer.SubmitCommit(InsertBody(9, 9, 9)).get();
  EXPECT_TRUE(st.IsUnavailable()) << st.ToString();
}

// A stalled fsync delays the batch but commits still succeed and are
// durable (latency fault, not a durability fault).
TEST_F(LogWriterTest, FsyncStallDelaysButCommits) {
  std::string path = ::testing::TempDir() + "/oltap_lw_stall_test.log";
  std::remove(path.c_str());
  Wal::Options wopts;
  wopts.fsync_on_commit = true;
  auto wal = Wal::OpenFile(path, wopts);
  ASSERT_TRUE(wal.ok());

  FailpointConfig cfg;
  cfg.status = Status::Unavailable("stall");
  ScopedFailpoint armed("wal.fsync.stall", cfg);

  LogWriter::Options opts;
  opts.persist_interval_us = 0;
  LogWriter writer(wal->get(), opts);
  EXPECT_TRUE(writer.SubmitCommit(InsertBody(1, 1, 1)).get().ok());

  auto catalog = FreshCatalog();
  auto replay = Wal::ReplayFile(path, catalog.get());
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->txns_applied, 1u);
  std::remove(path.c_str());
}

// A writer-thread crash fails the in-hand batch and everything queued
// behind it, later submissions fail fast, and Restart() brings the
// subsystem back without losing the log.
TEST_F(LogWriterTest, CrashFailsInFlightThenRestartRecovers) {
  Wal wal;
  LogWriter::Options opts;
  opts.max_batch = 4;
  opts.persist_interval_us = 100'000;
  LogWriter writer(&wal, opts);

  std::vector<std::future<Status>> futures;
  {
    FailpointConfig cfg;
    cfg.status = Status::Internal("injected writer crash");
    ScopedFailpoint armed("logwriter.crash", cfg);
    for (int i = 0; i < 3; ++i) {
      futures.push_back(writer.SubmitCommit(InsertBody(i + 1, i + 1, i)));
    }
    for (auto& f : futures) {
      Status st = f.get();
      EXPECT_EQ(st.code(), StatusCode::kInternal) << st.ToString();
    }
  }
  EXPECT_FALSE(writer.running());
  EXPECT_EQ(writer.stats().crashes, 1u);
  EXPECT_EQ(wal.num_records(), 0u);

  // Dead writer: fail fast, don't block the committer.
  Status st = writer.SubmitCommit(InsertBody(5, 5, 5)).get();
  EXPECT_TRUE(st.IsUnavailable()) << st.ToString();

  ASSERT_TRUE(writer.Restart().ok());
  EXPECT_TRUE(writer.running());
  EXPECT_FALSE(writer.Restart().ok()) << "restart while running must fail";
  EXPECT_TRUE(writer.SubmitCommit(InsertBody(6, 6, 6)).get().ok());
  EXPECT_EQ(wal.num_records(), 1u);
}

// Stop() drains queued commits into a final durable batch.
TEST_F(LogWriterTest, StopDrainsQueuedCommits) {
  Wal wal;
  LogWriter::Options opts;
  opts.max_batch = 4;
  opts.persist_interval_us = 50'000;
  LogWriter writer(&wal, opts);

  std::vector<std::future<Status>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(writer.SubmitCommit(InsertBody(i + 1, i + 1, i)));
  }
  writer.Stop();
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  EXPECT_EQ(wal.num_records(), 10u);
  EXPECT_FALSE(writer.running());

  Status st = writer.SubmitCommit(InsertBody(99, 99, 99)).get();
  EXPECT_TRUE(st.IsUnavailable());
}

// The full ack contract through TransactionManager: concurrent committers
// route durability through the writer, every acked commit is visible to
// the committer's next snapshot AND survives replay into a fresh catalog.
TEST_F(LogWriterTest, ConcurrentCommitsThroughManagerAckDurableAndVisible) {
  Wal wal;
  Catalog source;
  ASSERT_TRUE(source.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  TransactionManager tm(&source, &wal);
  Table* table = source.GetTable("t");

  LogWriter::Options opts;
  opts.max_batch = 16;
  opts.persist_interval_us = 100;
  LogWriter writer(&wal, opts);
  tm.SetLogWriter(&writer);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kPerThread; ++i) {
        int64_t id = w * kPerThread + i;
        auto t = tm.Begin();
        ASSERT_TRUE(t->Insert(table, MakeRow(id)).ok());
        ASSERT_TRUE(tm.Commit(t.get()).ok());
        // Read-your-writes: the ack means a new snapshot sees the row.
        auto t2 = tm.Begin();
        Row out;
        EXPECT_TRUE(t2->GetByRow(table, MakeRow(id), &out)) << id;
        tm.Abort(t2.get());
      }
    });
  }
  for (auto& t : threads) t.join();
  tm.SetLogWriter(nullptr);
  writer.Stop();

  EXPECT_EQ(wal.num_records(), static_cast<size_t>(kThreads * kPerThread));
  EXPECT_EQ(table->CountVisible(kFarFuture),
            static_cast<size_t>(kThreads * kPerThread));

  auto catalog = FreshCatalog();
  auto replay = Wal::Replay(wal.buffer(), catalog.get());
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->txns_applied, static_cast<size_t>(kThreads * kPerThread));
  EXPECT_EQ(catalog->GetTable("t")->CountVisible(kFarFuture),
            static_cast<size_t>(kThreads * kPerThread));
}

// A torn batch under the manager: every commit in the doomed batch returns
// the error, applies nothing, and the engine's sealed-log state is
// surfaced to later commits as kUnavailable.
TEST_F(LogWriterTest, TornBatchThroughManagerAppliesNothing) {
  Wal wal;
  Catalog source;
  ASSERT_TRUE(source.CreateTable("t", TestSchema(), TableFormat::kColumn).ok());
  TransactionManager tm(&source, &wal);
  Table* table = source.GetTable("t");

  LogWriter::Options opts;
  opts.max_batch = 64;
  opts.persist_interval_us = 20'000;  // wide window: both commits batch
  LogWriter writer(&wal, opts);
  tm.SetLogWriter(&writer);

  {
    FailpointConfig cfg;
    cfg.status = Status::Unavailable("injected torn batch");
    ScopedFailpoint armed("wal.batch.torn", cfg);
    std::vector<std::thread> threads;
    for (int w = 0; w < 2; ++w) {
      threads.emplace_back([&, w] {
        auto t = tm.Begin();
        ASSERT_TRUE(t->Insert(table, MakeRow(w)).ok());
        Status st = tm.Commit(t.get());
        EXPECT_TRUE(st.IsUnavailable()) << st.ToString();
      });
    }
    for (auto& t : threads) t.join();
  }
  EXPECT_TRUE(wal.sealed());
  EXPECT_EQ(table->CountVisible(kFarFuture), 0u)
      << "failed batch must not apply";

  // Sealed log: the next commit fails deterministically, up front.
  auto t = tm.Begin();
  ASSERT_TRUE(t->Insert(table, MakeRow(7)).ok());
  EXPECT_TRUE(tm.Commit(t.get()).IsUnavailable());

  tm.SetLogWriter(nullptr);
  writer.Stop();
}

}  // namespace
}  // namespace oltap
