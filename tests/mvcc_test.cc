#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "storage/row_store.h"
#include "txn/mvcc.h"

namespace oltap {
namespace {

class MvccTest : public ::testing::Test {
 protected:
  MvccTest()
      : store_(SchemaBuilder()
                   .AddInt64("id", false)
                   .AddInt64("v")
                   .SetKey({"id"})
                   .Build()),
        engine_(&store_, &oracle_) {}

  Row MakeRow(int64_t id, int64_t v) {
    return Row{Value::Int64(id), Value::Int64(v)};
  }
  std::string KeyOf(int64_t id) {
    return EncodeKey(store_.schema(), MakeRow(id, 0));
  }

  TimestampOracle oracle_;
  RowStore store_;
  MvccEngine engine_;
};

TEST_F(MvccTest, CommitMakesVisible) {
  auto t1 = engine_.Begin();
  ASSERT_TRUE(engine_.Upsert(t1.get(), KeyOf(1), MakeRow(1, 10)).ok());
  engine_.Commit(t1.get());

  auto t2 = engine_.Begin();
  Row out;
  ASSERT_TRUE(engine_.Read(t2.get(), KeyOf(1), &out));
  EXPECT_EQ(out[1].AsInt64(), 10);
  engine_.Commit(t2.get());
}

TEST_F(MvccTest, IntentsInvisibleToOthersVisibleToSelf) {
  auto t1 = engine_.Begin();
  ASSERT_TRUE(engine_.Upsert(t1.get(), KeyOf(1), MakeRow(1, 10)).ok());
  Row out;
  ASSERT_TRUE(engine_.Read(t1.get(), KeyOf(1), &out));  // own intent
  auto t2 = engine_.Begin();
  EXPECT_FALSE(engine_.Read(t2.get(), KeyOf(1), &out));
  engine_.Abort(t1.get());
  engine_.Abort(t2.get());
}

TEST_F(MvccTest, AbortUnlinksIntent) {
  auto t1 = engine_.Begin();
  ASSERT_TRUE(engine_.Upsert(t1.get(), KeyOf(1), MakeRow(1, 10)).ok());
  engine_.Abort(t1.get());
  auto t2 = engine_.Begin();
  Row out;
  EXPECT_FALSE(engine_.Read(t2.get(), KeyOf(1), &out));
  // The key can be written again afterwards.
  ASSERT_TRUE(engine_.Upsert(t2.get(), KeyOf(1), MakeRow(1, 20)).ok());
  engine_.Commit(t2.get());
}

TEST_F(MvccTest, AbortRestoresClosedVersion) {
  auto t1 = engine_.Begin();
  ASSERT_TRUE(engine_.Upsert(t1.get(), KeyOf(1), MakeRow(1, 10)).ok());
  engine_.Commit(t1.get());

  auto t2 = engine_.Begin();
  ASSERT_TRUE(engine_.Upsert(t2.get(), KeyOf(1), MakeRow(1, 20)).ok());
  engine_.Abort(t2.get());

  auto t3 = engine_.Begin();
  Row out;
  ASSERT_TRUE(engine_.Read(t3.get(), KeyOf(1), &out));
  EXPECT_EQ(out[1].AsInt64(), 10);
  engine_.Commit(t3.get());
}

TEST_F(MvccTest, WriteWriteConflictDetectedAtWriteTime) {
  auto t0 = engine_.Begin();
  ASSERT_TRUE(engine_.Upsert(t0.get(), KeyOf(1), MakeRow(1, 0)).ok());
  engine_.Commit(t0.get());

  auto t1 = engine_.Begin();
  auto t2 = engine_.Begin();
  ASSERT_TRUE(engine_.Upsert(t1.get(), KeyOf(1), MakeRow(1, 1)).ok());
  Status st = engine_.Upsert(t2.get(), KeyOf(1), MakeRow(1, 2));
  EXPECT_TRUE(st.IsAborted());
  EXPECT_GE(engine_.num_conflicts(), 1u);
  engine_.Commit(t1.get());
  engine_.Abort(t2.get());
}

TEST_F(MvccTest, CommitAfterSnapshotConflicts) {
  auto t0 = engine_.Begin();
  ASSERT_TRUE(engine_.Upsert(t0.get(), KeyOf(1), MakeRow(1, 0)).ok());
  engine_.Commit(t0.get());

  auto t1 = engine_.Begin();  // snapshot before t2's commit
  auto t2 = engine_.Begin();
  ASSERT_TRUE(engine_.Upsert(t2.get(), KeyOf(1), MakeRow(1, 5)).ok());
  engine_.Commit(t2.get());
  // t1 now tries to write the same key: first-committer-wins kicks in.
  EXPECT_TRUE(engine_.Upsert(t1.get(), KeyOf(1), MakeRow(1, 9)).IsAborted());
  engine_.Abort(t1.get());
}

TEST_F(MvccTest, DeleteHidesRow) {
  auto t0 = engine_.Begin();
  ASSERT_TRUE(engine_.Upsert(t0.get(), KeyOf(1), MakeRow(1, 0)).ok());
  engine_.Commit(t0.get());

  auto reader_before = engine_.Begin();
  auto t1 = engine_.Begin();
  ASSERT_TRUE(engine_.Delete(t1.get(), KeyOf(1)).ok());
  engine_.Commit(t1.get());

  Row out;
  // The pre-delete snapshot still sees the row.
  ASSERT_TRUE(engine_.Read(reader_before.get(), KeyOf(1), &out));
  auto reader_after = engine_.Begin();
  EXPECT_FALSE(engine_.Read(reader_after.get(), KeyOf(1), &out));
  engine_.Abort(reader_before.get());
  engine_.Abort(reader_after.get());
}

TEST_F(MvccTest, DeleteMissingKeyFails) {
  auto t = engine_.Begin();
  EXPECT_TRUE(engine_.Delete(t.get(), KeyOf(404)).IsNotFound());
  engine_.Abort(t.get());
}

TEST_F(MvccTest, MultipleOwnWritesToSameKey) {
  auto t = engine_.Begin();
  ASSERT_TRUE(engine_.Upsert(t.get(), KeyOf(1), MakeRow(1, 1)).ok());
  ASSERT_TRUE(engine_.Upsert(t.get(), KeyOf(1), MakeRow(1, 2)).ok());
  ASSERT_TRUE(engine_.Upsert(t.get(), KeyOf(1), MakeRow(1, 3)).ok());
  Row out;
  ASSERT_TRUE(engine_.Read(t.get(), KeyOf(1), &out));
  EXPECT_EQ(out[1].AsInt64(), 3);
  engine_.Commit(t.get());
  auto check = engine_.Begin();
  ASSERT_TRUE(engine_.Read(check.get(), KeyOf(1), &out));
  EXPECT_EQ(out[1].AsInt64(), 3);
  engine_.Commit(check.get());
}

TEST_F(MvccTest, ConcurrentTransferPreservesTotal) {
  // Bank-transfer invariant under concurrent readers and writers: the sum
  // across accounts is constant in every snapshot.
  constexpr int kAccounts = 10;
  constexpr int64_t kInitial = 1000;
  {
    auto setup = engine_.Begin();
    for (int64_t a = 0; a < kAccounts; ++a) {
      ASSERT_TRUE(
          engine_.Upsert(setup.get(), KeyOf(a), MakeRow(a, kInitial)).ok());
    }
    engine_.Commit(setup.get());
  }
  std::atomic<bool> stop{false};
  std::atomic<int> bad_sums{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&, w] {
      Rng rng(w + 1);
      for (int i = 0; i < 300; ++i) {
        int64_t from = static_cast<int64_t>(rng.Uniform(kAccounts));
        int64_t to = static_cast<int64_t>(rng.Uniform(kAccounts));
        if (from == to) continue;
        auto t = engine_.Begin();
        Row a, b;
        if (!engine_.Read(t.get(), KeyOf(from), &a) ||
            !engine_.Read(t.get(), KeyOf(to), &b)) {
          engine_.Abort(t.get());
          continue;
        }
        a[1] = Value::Int64(a[1].AsInt64() - 1);
        b[1] = Value::Int64(b[1].AsInt64() + 1);
        if (!engine_.Upsert(t.get(), KeyOf(from), a).ok() ||
            !engine_.Upsert(t.get(), KeyOf(to), b).ok()) {
          engine_.Abort(t.get());
          continue;
        }
        engine_.Commit(t.get());
      }
    });
  }
  std::thread reader([&] {
    while (!stop.load()) {
      auto t = engine_.Begin();
      int64_t sum = 0;
      bool all = true;
      for (int64_t a = 0; a < kAccounts; ++a) {
        Row out;
        if (!engine_.Read(t.get(), KeyOf(a), &out)) {
          all = false;
          break;
        }
        sum += out[1].AsInt64();
      }
      if (all && sum != kAccounts * kInitial) bad_sums.fetch_add(1);
      engine_.Abort(t.get());
    }
  });
  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(bad_sums.load(), 0);

  auto final_check = engine_.Begin();
  int64_t sum = 0;
  for (int64_t a = 0; a < kAccounts; ++a) {
    Row out;
    ASSERT_TRUE(engine_.Read(final_check.get(), KeyOf(a), &out));
    sum += out[1].AsInt64();
  }
  EXPECT_EQ(sum, kAccounts * kInitial);
  engine_.Commit(final_check.get());
}

}  // namespace
}  // namespace oltap
