#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "storage/row.h"
#include "workload/chbench.h"
#include "workload/driver.h"

namespace oltap {
namespace {

constexpr Timestamp kFarFuture = 1'000'000'000;

const char* kTables[] = {"warehouse", "district",  "customer",
                         "history",   "neworder",  "orders",
                         "orderline", "item",      "stock"};

// Order-independent rendering of every committed row of every TPC-C
// table. Two databases with identical committed state produce identical
// fingerprints regardless of commit interleaving (and the keyless history
// table needs no declared key for this).
std::map<std::string, std::vector<std::string>> Fingerprint(Database* db) {
  std::map<std::string, std::vector<std::string>> out;
  for (const char* name : kTables) {
    const Table* table = db->catalog()->GetTable(name);
    std::vector<std::string>& rows = out[name];
    table->ScanVisible(kFarFuture, [&](const Row& row) {
      rows.push_back(RowToString(row));
    });
    std::sort(rows.begin(), rows.end());
  }
  return out;
}

int64_t CountVisibleRows(Database* db, const std::string& table) {
  int64_t n = 0;
  db->catalog()->GetTable(table)->ScanVisible(kFarFuture,
                                              [&](const Row&) { ++n; });
  return n;
}

CHConfig TinyConfig() {
  CHConfig config;
  config.warehouses = 2;
  config.districts_per_warehouse = 2;
  config.customers_per_district = 10;
  config.items = 50;
  config.initial_orders_per_district = 5;
  return config;
}

TEST(ConcurrentDriverTest, DeterministicStreams) {
  auto a = ConcurrentDriver::MakeStream(7, 3, 500);
  auto b = ConcurrentDriver::MakeStream(7, 3, 500);
  ASSERT_EQ(a.size(), 500u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << i;
    EXPECT_EQ(a[i].seed, b[i].seed) << i;
  }

  // Different worker or driver seed: a different stream.
  auto c = ConcurrentDriver::MakeStream(7, 4, 500);
  auto d = ConcurrentDriver::MakeStream(8, 3, 500);
  size_t same_c = 0, same_d = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    same_c += a[i].seed == c[i].seed;
    same_d += a[i].seed == d[i].seed;
  }
  EXPECT_EQ(same_c, 0u);
  EXPECT_EQ(same_d, 0u);

  // The mix roughly follows TPC-C 45/43/4/4/4.
  size_t counts[5] = {};
  for (const TxnOp& op : a) ++counts[static_cast<size_t>(op.kind)];
  EXPECT_GT(counts[0], 150u);  // new_order ~225
  EXPECT_GT(counts[1], 150u);  // payment ~215
  EXPECT_GT(counts[2] + counts[3] + counts[4], 20u);  // ~60 combined
}

// Same seed + thread count => identical committed state, independent of
// scheduling. Requires the conflict-free configuration: every worker
// pinned to its own warehouse and remote probabilities zeroed, so no op
// ever aborts and retries (a retry would re-draw arguments).
TEST(ConcurrentDriverTest, DeterministicCommittedState) {
  auto run = [] {
    auto db = std::make_unique<Database>();
    CHConfig config = TinyConfig();
    config.warehouses = 4;
    config.remote_item_prob = 0.0;
    config.remote_payment_prob = 0.0;
    CHBenchmark bench(db.get(), config);
    EXPECT_TRUE(bench.CreateTables().ok());
    EXPECT_TRUE(bench.Load().ok());

    DriverOptions opts;
    opts.oltp_workers = 4;  // == warehouses: one worker per warehouse
    opts.olap_workers = 1;
    opts.ops_per_worker = 30;
    opts.seed = 11;
    opts.bind_home_warehouse = true;
    opts.merge_delta_threshold = 64;
    opts.merge_interval_ms = 1;
    ConcurrentDriver driver(&bench, opts);
    DriverReport report = driver.Run();

    EXPECT_EQ(report.txns.total(), 4u * 30u);
    EXPECT_EQ(report.txns.aborts, 0u) << "disjoint write sets cannot abort";
    for (const WorkerResult& w : report.workers) EXPECT_EQ(w.failed, 0u);
    return Fingerprint(db.get());
  };

  auto first = run();
  auto second = run();
  for (const char* name : kTables) {
    ASSERT_EQ(first[name].size(), second[name].size()) << name;
    EXPECT_EQ(first[name], second[name]) << name;
  }
  // The workload actually wrote something.
  EXPECT_GT(first["orders"].size(), 4u * 2u * 5u);
}

// Every acknowledged NewOrder commit is visible after the run, and
// aborted attempts left nothing behind — under a deliberately contended
// configuration (shared warehouses, remote payments/items on).
TEST(ConcurrentDriverTest, ZeroLostCommits) {
  Database db;
  CHBenchmark bench(&db, TinyConfig());
  ASSERT_TRUE(bench.CreateTables().ok());
  ASSERT_TRUE(bench.Load().ok());

  int64_t orders_before = CountVisibleRows(&db, "orders");
  int64_t history_before = CountVisibleRows(&db, "history");

  DriverOptions opts;
  opts.oltp_workers = 4;  // 2 warehouses: workers contend
  opts.olap_workers = 1;
  opts.ops_per_worker = 40;
  opts.seed = 23;
  opts.audit_commits = true;
  opts.merge_delta_threshold = 64;
  opts.merge_interval_ms = 1;
  ConcurrentDriver driver(&bench, opts);
  DriverReport report = driver.Run();

  // Every acked order key is unique and visible post-run.
  const Table* orders = db.catalog()->GetTable("orders");
  std::set<std::tuple<int64_t, int64_t, int64_t>> acked;
  uint64_t committed_new_orders = 0;
  for (const WorkerResult& w : report.workers) {
    committed_new_orders += w.stats.new_order;
    for (const NewOrderAck& ack : w.acks) {
      EXPECT_TRUE(acked.emplace(ack.w, ack.d, ack.o_id).second)
          << "duplicate ack " << ack.w << "/" << ack.d << "/" << ack.o_id;
      Row key{Value::Int64(ack.w), Value::Int64(ack.d), Value::Int64(ack.o_id)};
      Row out;
      EXPECT_TRUE(
          orders->Lookup(EncodeKey(orders->schema(), key), kFarFuture, &out))
          << "acked order not found: " << ack.w << "/" << ack.d << "/"
          << ack.o_id;
    }
  }
  EXPECT_EQ(acked.size(), committed_new_orders);

  // Exactly the acked orders were added — aborts contributed nothing.
  EXPECT_EQ(CountVisibleRows(&db, "orders"),
            orders_before + static_cast<int64_t>(acked.size()));
  // Same for Payment's history appends.
  EXPECT_EQ(CountVisibleRows(&db, "history"),
            history_before + static_cast<int64_t>(report.txns.payment));
}

TEST(ConcurrentDriverTest, MixedWorkloadReportsPerClassLatency) {
  Database db;
  CHBenchmark bench(&db, TinyConfig());
  ASSERT_TRUE(bench.CreateTables().ok());
  ASSERT_TRUE(bench.Load().ok());

  DriverOptions opts;
  opts.oltp_workers = 2;
  opts.olap_workers = 2;
  opts.ops_per_worker = 20;
  opts.seed = 5;
  opts.merge_delta_threshold = 64;
  opts.merge_interval_ms = 1;
  ConcurrentDriver driver(&bench, opts);
  DriverReport report = driver.Run();

  EXPECT_GT(report.duration_s, 0.0);
  // Contended config: an op whose every retry aborts is counted in
  // oltp_failed, not txns, so assert the full ledger instead of exact
  // commit counts.
  EXPECT_EQ(report.txns.total() + report.oltp_failed, 2u * 20u);
  EXPECT_GT(report.oltp_txn_per_s, 0.0);
  EXPECT_GE(report.olap_completed, 2u);  // each OLAP client ran >= 1 query
  EXPECT_EQ(report.olap_failed, 0u);

  EXPECT_EQ(report.oltp_latency.count, 2u * 20u);
  EXPECT_GE(report.olap_latency.count, report.olap_completed);
  EXPECT_GE(report.oltp_latency.p999_us, report.oltp_latency.p99_us);
  EXPECT_GE(report.oltp_latency.p99_us, report.oltp_latency.p50_us);
  EXPECT_GE(report.oltp_latency.max_us, report.oltp_latency.p999_us);
  EXPECT_GE(report.freshness_lag_us, 0);
  EXPECT_LT(report.abort_rate, 1.0);
}

TEST(ConcurrentDriverTest, TimedModeRunsToDeadline) {
  Database db;
  CHBenchmark bench(&db, TinyConfig());
  ASSERT_TRUE(bench.CreateTables().ok());
  ASSERT_TRUE(bench.Load().ok());

  DriverOptions opts;
  opts.oltp_workers = 2;
  opts.olap_workers = 1;
  opts.duration_ms = 50;
  opts.seed = 3;
  opts.think_time_us = 100;
  ConcurrentDriver driver(&bench, opts);
  DriverReport report = driver.Run();

  EXPECT_GE(report.duration_s, 0.05);
  EXPECT_GT(report.txns.total(), 0u);
}

}  // namespace
}  // namespace oltap
