#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/arena.h"
#include "common/bitvector.h"
#include "common/clock.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/spinlock.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace oltap {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing row");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "not found: missing row");
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_FALSE(s.IsAborted());
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Aborted("conflict");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsAborted());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

Result<int> Doubled(Result<int> in) {
  OLTAP_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_FALSE(Doubled(Status::Internal("x")).ok());
}

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena(64);
  std::set<void*> seen;
  for (int i = 0; i < 1000; ++i) {
    size_t align = size_t{1} << (i % 5);  // 1..16
    void* p = arena.Allocate(17, align);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u);
    EXPECT_TRUE(seen.insert(p).second);
  }
  EXPECT_GE(arena.bytes_allocated(), 17000u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_allocated());
}

TEST(ArenaTest, AllocateAndCopyPreservesBytes) {
  Arena arena;
  const char data[] = "hello arena";
  void* p = arena.AllocateAndCopy(data, sizeof(data));
  EXPECT_EQ(memcmp(p, data, sizeof(data)), 0);
}

TEST(ArenaTest, ResetReleasesMemory) {
  Arena arena(64);
  arena.Allocate(10000);
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), 0u);
}

TEST(ArenaTest, ConcurrentAllocations) {
  Arena arena(128);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        auto* p = static_cast<uint64_t*>(arena.Allocate(8, 8));
        *p = 0xdeadbeef;  // touch it; ASAN would catch overlap corruption
        if (*p != 0xdeadbeef) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(arena.bytes_allocated(), 8u * 8 * 2000);
}

TEST(BitVectorTest, SetGetClear) {
  BitVector bv(130);
  EXPECT_EQ(bv.size(), 130u);
  EXPECT_EQ(bv.CountSet(), 0u);
  bv.Set(0);
  bv.Set(63);
  bv.Set(64);
  bv.Set(129);
  EXPECT_TRUE(bv.Get(0));
  EXPECT_TRUE(bv.Get(63));
  EXPECT_TRUE(bv.Get(64));
  EXPECT_TRUE(bv.Get(129));
  EXPECT_FALSE(bv.Get(1));
  EXPECT_EQ(bv.CountSet(), 4u);
  bv.Clear(63);
  EXPECT_FALSE(bv.Get(63));
  EXPECT_EQ(bv.CountSet(), 3u);
}

TEST(BitVectorTest, NotMasksTail) {
  BitVector bv(70);
  bv.Not();
  EXPECT_EQ(bv.CountSet(), 70u);
  bv.Not();
  EXPECT_EQ(bv.CountSet(), 0u);
}

TEST(BitVectorTest, FindNextSet) {
  BitVector bv(200);
  bv.Set(5);
  bv.Set(64);
  bv.Set(199);
  EXPECT_EQ(bv.FindNextSet(0), 5u);
  EXPECT_EQ(bv.FindNextSet(5), 5u);
  EXPECT_EQ(bv.FindNextSet(6), 64u);
  EXPECT_EQ(bv.FindNextSet(65), 199u);
  EXPECT_EQ(bv.FindNextSet(200), 200u);
}

TEST(BitVectorTest, AndOrSemantics) {
  BitVector a(100), b(100);
  a.Set(1);
  a.Set(50);
  b.Set(50);
  b.Set(99);
  BitVector a_and = a;
  a_and.And(b);
  EXPECT_EQ(a_and.CountSet(), 1u);
  EXPECT_TRUE(a_and.Get(50));
  BitVector a_or = a;
  a_or.Or(b);
  EXPECT_EQ(a_or.CountSet(), 3u);
}

TEST(BitVectorTest, CountSetPrefix) {
  BitVector bv(256);
  for (size_t i = 0; i < 256; i += 3) bv.Set(i);
  size_t expected = 0;
  for (size_t end = 0; end <= 256; ++end) {
    EXPECT_EQ(bv.CountSetPrefix(end), expected) << "end=" << end;
    if (end < 256 && end % 3 == 0) ++expected;
  }
}

TEST(BitVectorTest, ResizeWithFill) {
  BitVector bv(10, true);
  EXPECT_EQ(bv.CountSet(), 10u);
  bv.Resize(100, true);
  EXPECT_EQ(bv.CountSet(), 100u);
  bv.Resize(5);
  EXPECT_EQ(bv.CountSet(), 5u);
}

TEST(BitVectorTest, AppendSetIndices) {
  BitVector bv(150);
  std::vector<uint32_t> expected = {0, 7, 63, 64, 149};
  for (uint32_t i : expected) bv.Set(i);
  std::vector<uint32_t> got;
  bv.AppendSetIndices(&got);
  EXPECT_EQ(got, expected);
}

TEST(HashTest, DistinctInputsDistinctHashes) {
  std::set<uint64_t> hashes;
  for (int64_t i = 0; i < 10000; ++i) hashes.insert(HashInt64(i));
  EXPECT_EQ(hashes.size(), 10000u);
}

TEST(HashTest, StringHashConsistency) {
  EXPECT_EQ(HashString("abc"), HashString("abc"));
  EXPECT_NE(HashString("abc"), HashString("abd"));
  EXPECT_NE(HashString(""), HashString("a"));
}

TEST(HashTest, NegativeZeroDouble) {
  EXPECT_EQ(HashDouble(0.0), HashDouble(-0.0));
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, ZipfSkewsTowardZero) {
  Rng rng(2);
  size_t low = 0;
  const size_t n = 20000;
  for (size_t i = 0; i < n; ++i) {
    uint64_t v = rng.Zipf(1000, 0.99);
    EXPECT_LT(v, 1000u);
    if (v < 10) ++low;
  }
  // Zipf(0.99): the top 1% of keys should draw far more than 1% of samples.
  EXPECT_GT(low, n / 10);
}

TEST(RngTest, AlphaStringBounds) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    std::string s = rng.AlphaString(4, 9);
    EXPECT_GE(s.size(), 4u);
    EXPECT_LE(s.size(), 9u);
    for (char c : s) {
      EXPECT_GE(c, 'a');
      EXPECT_LE(c, 'z');
    }
  }
}

TEST(RngTest, NURandWithinBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NURand(255, 1, 3000);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 3000);
  }
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, SubmitWithResult) {
  ThreadPool pool(2);
  auto fut = pool.SubmitWithResult([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForSmallN) {
  ThreadPool pool(8);
  std::atomic<int> sum{0};
  pool.ParallelFor(1, [&](size_t i) { sum.fetch_add(static_cast<int>(i) + 1); });
  EXPECT_EQ(sum.load(), 1);
  pool.ParallelFor(0, [&](size_t) { sum.fetch_add(100); });
  EXPECT_EQ(sum.load(), 1);
}

TEST(SpinLockTest, MutualExclusion) {
  SpinLock lock;
  int64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50000; ++i) {
        std::lock_guard<SpinLock> guard(lock);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 200000);
}

TEST(ClockTest, ManualClockAdvances) {
  ManualClock clock(100);
  EXPECT_EQ(clock.NowMicros(), 100);
  clock.AdvanceMicros(50);
  EXPECT_EQ(clock.NowMicros(), 150);
  Stopwatch sw(&clock);
  clock.AdvanceMicros(25);
  EXPECT_EQ(sw.ElapsedMicros(), 25);
}

TEST(ClockTest, SystemClockMonotone) {
  SystemClock* clock = SystemClock::Get();
  int64_t a = clock->NowMicros();
  int64_t b = clock->NowMicros();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace oltap
