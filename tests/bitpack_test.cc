#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/rng.h"
#include "storage/bitpack.h"
#include "storage/dictionary.h"

namespace oltap {
namespace {

TEST(BitsForMaxTest, Boundaries) {
  EXPECT_EQ(BitsForMax(0), 1);
  EXPECT_EQ(BitsForMax(1), 1);
  EXPECT_EQ(BitsForMax(2), 2);
  EXPECT_EQ(BitsForMax(3), 2);
  EXPECT_EQ(BitsForMax(4), 3);
  EXPECT_EQ(BitsForMax(255), 8);
  EXPECT_EQ(BitsForMax(256), 9);
}

TEST(PackedArrayTest, RoundTrip) {
  Rng rng(1);
  for (int bits = 1; bits <= 31; ++bits) {
    uint32_t mask = (uint32_t{1} << bits) - 1;
    std::vector<uint32_t> codes(257);
    for (auto& c : codes) c = static_cast<uint32_t>(rng.Next()) & mask;
    PackedArray p = PackedArray::Pack(codes, bits);
    ASSERT_EQ(p.size(), codes.size());
    for (size_t i = 0; i < codes.size(); ++i) {
      EXPECT_EQ(p.Get(i), codes[i]) << "bits=" << bits << " i=" << i;
    }
  }
}

TEST(PackedArrayTest, EmptyArray) {
  PackedArray p = PackedArray::Pack({}, 8);
  EXPECT_EQ(p.size(), 0u);
  BitVector out;
  p.Scan(CompareOp::kGe, 0, &out);
  EXPECT_EQ(out.size(), 0u);
}

// Property sweep: SWAR scan must agree with the scalar reference for every
// operator, bit width, and constant position (below/inside/above range).
using ScanParam = std::tuple<int, CompareOp>;

class PackedScanTest : public ::testing::TestWithParam<ScanParam> {};

TEST_P(PackedScanTest, SwarMatchesScalar) {
  auto [bits, op] = GetParam();
  uint32_t mask = (uint32_t{1} << bits) - 1;
  Rng rng(static_cast<uint64_t>(bits) * 100 + static_cast<uint64_t>(op));
  std::vector<uint32_t> codes(1000);
  for (auto& c : codes) c = static_cast<uint32_t>(rng.Next()) & mask;
  PackedArray p = PackedArray::Pack(codes, bits);

  std::vector<uint32_t> constants = {0, 1, mask / 2, mask};
  if (mask > 2) constants.push_back(mask - 1);
  for (uint32_t c : constants) {
    BitVector swar, scalar;
    p.Scan(op, c, &swar);
    p.ScanScalar(op, c, &scalar);
    EXPECT_EQ(swar, scalar) << "bits=" << bits << " c=" << c;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWidthsAllOps, PackedScanTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 7, 8, 11, 13, 16, 21,
                                         27, 31),
                       ::testing::Values(CompareOp::kEq, CompareOp::kNe,
                                         CompareOp::kLt, CompareOp::kLe,
                                         CompareOp::kGt, CompareOp::kGe)));

TEST(PackedArrayTest, ScanRange) {
  std::vector<uint32_t> codes;
  for (uint32_t i = 0; i < 100; ++i) codes.push_back(i % 50);
  PackedArray p = PackedArray::Pack(codes, 6);
  BitVector out;
  p.ScanRange(10, 19, &out);
  size_t expected = 0;
  for (uint32_t c : codes) {
    if (c >= 10 && c <= 19) ++expected;
  }
  EXPECT_EQ(out.CountSet(), expected);
  // Degenerate range.
  p.ScanRange(20, 10, &out);
  EXPECT_EQ(out.CountSet(), 0u);
  // Full range.
  p.ScanRange(0, 63, &out);
  EXPECT_EQ(out.CountSet(), codes.size());
}

TEST(DictionaryTest, BuildSortsAndDedups) {
  Dictionary d = Dictionary::Build({"pear", "apple", "pear", "fig"});
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.Decode(0), "apple");
  EXPECT_EQ(d.Decode(1), "fig");
  EXPECT_EQ(d.Decode(2), "pear");
}

TEST(DictionaryTest, EncodeFindsExact) {
  Dictionary d = Dictionary::Build({"a", "b", "c"});
  EXPECT_EQ(d.Encode("b"), 1);
  EXPECT_EQ(d.Encode("zz"), -1);
  EXPECT_EQ(d.Encode(""), -1);
}

TEST(DictionaryTest, OrderPreservingCodes) {
  Rng rng(9);
  std::vector<std::string> values;
  for (int i = 0; i < 300; ++i) values.push_back(rng.AlphaString(1, 8));
  Dictionary d = Dictionary::Build(values);
  for (const std::string& a : values) {
    for (int i = 0; i < 5; ++i) {
      const std::string& b = values[rng.Uniform(values.size())];
      int64_t ca = d.Encode(a), cb = d.Encode(b);
      EXPECT_EQ(a < b, ca < cb);
    }
  }
}

TEST(DictionaryTest, BoundsForRangeRewrite) {
  Dictionary d = Dictionary::Build({"bb", "dd", "ff"});
  // LowerBound: first code with value >= s.
  EXPECT_EQ(d.LowerBound("aa"), 0u);
  EXPECT_EQ(d.LowerBound("bb"), 0u);
  EXPECT_EQ(d.LowerBound("cc"), 1u);
  EXPECT_EQ(d.LowerBound("zz"), 3u);
  // UpperBound: first code with value > s.
  EXPECT_EQ(d.UpperBound("bb"), 1u);
  EXPECT_EQ(d.UpperBound("bz"), 1u);
  EXPECT_EQ(d.UpperBound("ff"), 3u);
}

TEST(DictionaryTest, EmptyDictionary) {
  Dictionary d = Dictionary::Build({});
  EXPECT_EQ(d.size(), 0u);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.Encode("x"), -1);
  EXPECT_EQ(d.LowerBound("x"), 0u);
}

}  // namespace
}  // namespace oltap
