#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/session.h"

namespace oltap {
namespace {

TEST(LexerTest, TokenKinds) {
  auto tokens = sql::Lex("SELECT a1, 'it''s' FROM t WHERE x >= 3.5e2");
  ASSERT_TRUE(tokens.ok());
  const auto& v = *tokens;
  EXPECT_TRUE(v[0].IsKeyword("SELECT"));
  EXPECT_EQ(v[1].text, "a1");
  EXPECT_TRUE(v[2].IsSymbol(","));
  EXPECT_EQ(v[3].kind, sql::Token::Kind::kString);
  EXPECT_EQ(v[3].text, "it's");
  EXPECT_TRUE(v[4].IsKeyword("FROM"));
  EXPECT_EQ(v[7].text, "x");
  EXPECT_TRUE(v[8].IsSymbol(">="));
  EXPECT_EQ(v[9].kind, sql::Token::Kind::kDouble);
  EXPECT_DOUBLE_EQ(v[9].double_val, 350.0);
  EXPECT_EQ(v.back().kind, sql::Token::Kind::kEnd);
}

TEST(LexerTest, NotEqualsNormalized) {
  auto tokens = sql::Lex("a != b");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].text, "<>");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(sql::Lex("SELECT 'unterminated").ok());
  EXPECT_FALSE(sql::Lex("SELECT #").ok());
}

TEST(ParserTest, SelectWithAllClauses) {
  auto stmt = sql::Parse(
      "SELECT a, SUM(b) AS total FROM t JOIN u ON t.k = u.k "
      "WHERE a > 3 AND u.c = 'x' GROUP BY a ORDER BY total DESC LIMIT 5");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const sql::SelectStmt& s = *stmt->select;
  ASSERT_EQ(s.items.size(), 2u);
  EXPECT_EQ(s.items[1].alias, "total");
  ASSERT_EQ(s.tables.size(), 2u);
  EXPECT_EQ(s.tables[1].name, "u");
  ASSERT_NE(s.tables[1].join_on, nullptr);
  ASSERT_NE(s.where, nullptr);
  ASSERT_EQ(s.group_by.size(), 1u);
  ASSERT_EQ(s.order_by.size(), 1u);
  EXPECT_TRUE(s.order_by[0].descending);
  EXPECT_EQ(s.limit, 5);
}

TEST(ParserTest, OperatorPrecedence) {
  auto e = sql::ParseExpression("a + b * 2 > 10 OR NOT c = 1 AND d < 5");
  ASSERT_TRUE(e.ok());
  // OR binds loosest: ((a+(b*2))>10) OR ((NOT (c=1)) AND (d<5))
  EXPECT_EQ((*e)->ToString(),
            "(((a + (b * 2)) > 10) OR (NOT (c = 1) AND (d < 5)))");
}

TEST(ParserTest, IsNullAndIsNotNull) {
  auto e1 = sql::ParseExpression("x IS NULL");
  ASSERT_TRUE(e1.ok());
  EXPECT_EQ((*e1)->kind, sql::ParseExpr::Kind::kIsNull);
  auto e2 = sql::ParseExpression("x IS NOT NULL");
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ((*e2)->kind, sql::ParseExpr::Kind::kUnaryNot);
}

TEST(ParserTest, InsertMultipleRows) {
  auto stmt = sql::Parse("INSERT INTO t VALUES (1, 'a'), (2, NULL)");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->insert->rows.size(), 2u);
  EXPECT_EQ(stmt->insert->rows[1][1]->kind, sql::ParseExpr::Kind::kNullLit);
}

TEST(ParserTest, CreateTableWithKeyAndFormat) {
  auto stmt = sql::Parse(
      "CREATE TABLE t (id BIGINT NOT NULL, name VARCHAR(16), score DOUBLE, "
      "PRIMARY KEY (id)) FORMAT DUAL");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const sql::CreateTableStmt& c = *stmt->create;
  ASSERT_EQ(c.columns.size(), 3u);
  EXPECT_FALSE(c.columns[0].nullable);
  EXPECT_EQ(c.columns[1].type, ValueType::kString);
  EXPECT_EQ(c.key_columns, std::vector<std::string>{"id"});
  EXPECT_EQ(c.format, TableFormat::kDual);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(sql::Parse("SELECT").ok());
  EXPECT_FALSE(sql::Parse("SELECT a FROM").ok());
  EXPECT_FALSE(sql::Parse("BOGUS STATEMENT").ok());
  EXPECT_FALSE(sql::Parse("SELECT a FROM t extra garbage ,").ok());
  EXPECT_FALSE(sql::Parse("INSERT INTO t VALUES (1").ok());
  EXPECT_FALSE(sql::Parse("CREATE TABLE t (x WIDGET)").ok());
}

class SqlEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Execute("CREATE TABLE emp (id BIGINT NOT NULL, "
                            "dept TEXT, salary DOUBLE, PRIMARY KEY (id)) "
                            "FORMAT COLUMN")
                    .ok());
    ASSERT_TRUE(db_.Execute("INSERT INTO emp VALUES "
                            "(1, 'eng', 100.0), (2, 'eng', 120.0), "
                            "(3, 'sales', 80.0), (4, 'sales', 90.0), "
                            "(5, 'hr', 70.0)")
                    .ok());
  }

  Database db_;
};

TEST_F(SqlEndToEndTest, SelectStar) {
  auto r = db_.Execute("SELECT * FROM emp ORDER BY id");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 5u);
  EXPECT_EQ(r->columns, (std::vector<std::string>{"id", "dept", "salary"}));
  EXPECT_EQ(r->rows[0][0].AsInt64(), 1);
  EXPECT_EQ(r->rows[4][1].AsString(), "hr");
}

TEST_F(SqlEndToEndTest, WhereAndProjection) {
  auto r = db_.Execute(
      "SELECT id, salary FROM emp WHERE dept = 'eng' ORDER BY salary DESC");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0][0].AsInt64(), 2);
}

TEST_F(SqlEndToEndTest, GroupByAggregates) {
  auto r = db_.Execute(
      "SELECT dept, COUNT(*) AS n, SUM(salary) AS total, AVG(salary) AS avg_s "
      "FROM emp GROUP BY dept ORDER BY dept");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 3u);
  EXPECT_EQ(r->rows[0][0].AsString(), "eng");
  EXPECT_EQ(r->rows[0][1].AsInt64(), 2);
  EXPECT_DOUBLE_EQ(r->rows[0][2].AsDouble(), 220.0);
  EXPECT_DOUBLE_EQ(r->rows[0][3].AsDouble(), 110.0);
}

TEST_F(SqlEndToEndTest, GlobalAggregate) {
  auto r = db_.Execute("SELECT COUNT(*), MIN(salary), MAX(salary) FROM emp");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsInt64(), 5);
  EXPECT_DOUBLE_EQ(r->rows[0][1].AsDouble(), 70.0);
  EXPECT_DOUBLE_EQ(r->rows[0][2].AsDouble(), 120.0);
}

TEST_F(SqlEndToEndTest, Join) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE dept (name TEXT NOT NULL, "
                          "budget DOUBLE, PRIMARY KEY (name))")
                  .ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO dept VALUES ('eng', 1000.0), "
                          "('sales', 500.0)")
                  .ok());
  auto r = db_.Execute(
      "SELECT e.id, d.budget FROM emp e JOIN dept d ON e.dept = d.name "
      "ORDER BY e.id");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 4u);  // hr has no dept row
  EXPECT_DOUBLE_EQ(r->rows[0][1].AsDouble(), 1000.0);
  EXPECT_DOUBLE_EQ(r->rows[3][1].AsDouble(), 500.0);
}

TEST_F(SqlEndToEndTest, JoinWithGroupBy) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE dept (name TEXT NOT NULL, "
                          "region TEXT, PRIMARY KEY (name))")
                  .ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO dept VALUES ('eng', 'west'), "
                          "('sales', 'east'), ('hr', 'west')")
                  .ok());
  auto r = db_.Execute(
      "SELECT d.region, SUM(e.salary) AS total FROM emp e "
      "JOIN dept d ON e.dept = d.name GROUP BY d.region ORDER BY d.region");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0][0].AsString(), "east");
  EXPECT_DOUBLE_EQ(r->rows[0][1].AsDouble(), 170.0);
  EXPECT_DOUBLE_EQ(r->rows[1][1].AsDouble(), 290.0);
}

TEST_F(SqlEndToEndTest, UpdateAndDelete) {
  auto u = db_.Execute("UPDATE emp SET salary = salary + 10.0 "
                       "WHERE dept = 'eng'");
  ASSERT_TRUE(u.ok()) << u.status().ToString();
  EXPECT_EQ(u->affected, 2u);
  auto r = db_.Execute("SELECT SUM(salary) FROM emp");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->rows[0][0].AsDouble(), 480.0);

  auto d = db_.Execute("DELETE FROM emp WHERE salary < 90.0");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->affected, 2u);  // hr 70 and sales 80
  auto count = db_.Execute("SELECT COUNT(*) FROM emp");
  EXPECT_EQ(count->rows[0][0].AsInt64(), 3);
}

TEST_F(SqlEndToEndTest, UpdateCannotChangeKey) {
  auto u = db_.Execute("UPDATE emp SET id = 99 WHERE id = 1");
  EXPECT_FALSE(u.ok());
}

TEST_F(SqlEndToEndTest, OrderByPosition) {
  auto r = db_.Execute("SELECT dept, salary FROM emp ORDER BY 2 DESC LIMIT 1");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->rows[0][1].AsDouble(), 120.0);
}

TEST_F(SqlEndToEndTest, IsNullPredicate) {
  ASSERT_TRUE(db_.Execute("INSERT INTO emp VALUES (6, NULL, 50.0)").ok());
  auto r = db_.Execute("SELECT id FROM emp WHERE dept IS NULL");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsInt64(), 6);
  auto r2 = db_.Execute("SELECT COUNT(*) FROM emp WHERE dept IS NOT NULL");
  EXPECT_EQ(r2->rows[0][0].AsInt64(), 5);
}

TEST_F(SqlEndToEndTest, TransactionalDmlVisibleOnCommitOnly) {
  auto txn = db_.txn_manager()->Begin();
  ASSERT_TRUE(
      db_.ExecuteIn(txn.get(), "INSERT INTO emp VALUES (10, 'x', 1.0)").ok());
  // Not committed: a separate statement does not see it.
  auto before = db_.Execute("SELECT COUNT(*) FROM emp");
  EXPECT_EQ(before->rows[0][0].AsInt64(), 5);
  ASSERT_TRUE(db_.txn_manager()->Commit(txn.get()).ok());
  auto after = db_.Execute("SELECT COUNT(*) FROM emp");
  EXPECT_EQ(after->rows[0][0].AsInt64(), 6);
}

TEST_F(SqlEndToEndTest, ErrorsSurfaceCleanly) {
  EXPECT_FALSE(db_.Execute("SELECT nope FROM emp").ok());
  EXPECT_FALSE(db_.Execute("SELECT * FROM nothere").ok());
  EXPECT_FALSE(db_.Execute("INSERT INTO emp VALUES (1)").ok());
  // Duplicate key.
  EXPECT_FALSE(db_.Execute("INSERT INTO emp VALUES (1, 'a', 1.0)").ok());
  // Aggregate in WHERE.
  EXPECT_FALSE(db_.Execute("SELECT id FROM emp WHERE SUM(salary) > 1").ok());
  // Non-grouped select item.
  EXPECT_FALSE(
      db_.Execute("SELECT dept, salary FROM emp GROUP BY dept").ok());
}

TEST_F(SqlEndToEndTest, BetweenPredicate) {
  auto r = db_.Execute(
      "SELECT id FROM emp WHERE salary BETWEEN 80.0 AND 100.0 ORDER BY id");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 3u);  // 100, 80, 90
  auto n = db_.Execute(
      "SELECT COUNT(*) FROM emp WHERE salary NOT BETWEEN 80.0 AND 100.0");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n->rows[0][0].AsInt64(), 2);  // 120 and 70
}

TEST_F(SqlEndToEndTest, InPredicate) {
  auto r = db_.Execute(
      "SELECT id FROM emp WHERE dept IN ('eng', 'hr') ORDER BY id");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 3u);
  auto n = db_.Execute(
      "SELECT COUNT(*) FROM emp WHERE id NOT IN (1, 2, 3)");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n->rows[0][0].AsInt64(), 2);
  // Single-element IN.
  auto one = db_.Execute("SELECT COUNT(*) FROM emp WHERE id IN (4)");
  EXPECT_EQ(one->rows[0][0].AsInt64(), 1);
}

TEST(ParserRewriteTest, BetweenAndInDesugar) {
  auto between = sql::ParseExpression("x BETWEEN 1 AND 5");
  ASSERT_TRUE(between.ok());
  EXPECT_EQ((*between)->ToString(), "((x >= 1) AND (x <= 5))");
  auto in = sql::ParseExpression("x IN (1, 2, 3)");
  ASSERT_TRUE(in.ok());
  EXPECT_EQ((*in)->ToString(), "(((x = 1) OR (x = 2)) OR (x = 3))");
  auto not_in = sql::ParseExpression("x NOT IN (7)");
  ASSERT_TRUE(not_in.ok());
  EXPECT_EQ((*not_in)->ToString(), "NOT (x = 7)");
  // BETWEEN binds tighter than logical AND.
  auto mixed = sql::ParseExpression("x BETWEEN 1 AND 5 AND y = 2");
  ASSERT_TRUE(mixed.ok());
  EXPECT_EQ((*mixed)->ToString(),
            "(((x >= 1) AND (x <= 5)) AND (y = 2))");
}

TEST_F(SqlEndToEndTest, HavingFiltersGroups) {
  auto r = db_.Execute(
      "SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept "
      "HAVING COUNT(*) > 1 ORDER BY dept");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 2u);  // eng and sales have 2 each, hr has 1
  EXPECT_EQ(r->rows[0][0].AsString(), "eng");
  EXPECT_EQ(r->rows[1][0].AsString(), "sales");

  // HAVING on an aggregate that is not in the select list (hidden agg).
  auto r2 = db_.Execute(
      "SELECT dept FROM emp GROUP BY dept HAVING SUM(salary) > 150.0 "
      "ORDER BY dept");
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  ASSERT_EQ(r2->rows.size(), 2u);
  ASSERT_EQ(r2->columns.size(), 1u);  // hidden aggregate not projected

  // HAVING referencing the group key and combining conditions.
  auto r3 = db_.Execute(
      "SELECT dept, AVG(salary) AS a FROM emp GROUP BY dept "
      "HAVING AVG(salary) >= 85.0 AND dept <> 'hr' ORDER BY dept");
  ASSERT_TRUE(r3.ok()) << r3.status().ToString();
  ASSERT_EQ(r3->rows.size(), 2u);

  // HAVING without aggregation context is rejected.
  EXPECT_FALSE(db_.Execute("SELECT id FROM emp HAVING id > 1").ok());
  // Bare non-grouped column inside HAVING is rejected.
  EXPECT_FALSE(db_.Execute("SELECT dept, COUNT(*) FROM emp GROUP BY dept "
                           "HAVING salary > 1")
                   .ok());
}

TEST_F(SqlEndToEndTest, SelectDistinct) {
  auto r = db_.Execute("SELECT DISTINCT dept FROM emp ORDER BY dept");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 3u);
  EXPECT_EQ(r->rows[0][0].AsString(), "eng");
  // Multi-column DISTINCT.
  ASSERT_TRUE(db_.Execute("INSERT INTO emp VALUES (6, 'eng', 100.0)").ok());
  auto r2 = db_.Execute(
      "SELECT DISTINCT dept, salary FROM emp ORDER BY dept, salary");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->rows.size(), 5u);  // (eng,100) deduped
  // DISTINCT respects LIMIT.
  auto r3 = db_.Execute("SELECT DISTINCT dept FROM emp LIMIT 2");
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->rows.size(), 2u);
}

TEST_F(SqlEndToEndTest, ExplainShowsPlanShape) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE dept (name TEXT NOT NULL, "
                          "budget DOUBLE, PRIMARY KEY (name))")
                  .ok());
  auto r = db_.Execute(
      "EXPLAIN SELECT dept, SUM(salary) AS total FROM emp "
      "JOIN dept d ON emp.dept = d.name WHERE salary > 50.0 "
      "GROUP BY dept ORDER BY total DESC LIMIT 3");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::string plan;
  for (const Row& row : r->rows) plan += row[0].AsString() + "\n";
  // Top-N fusion, projection, aggregation, join, and pushed scans all
  // appear, in pipeline order.
  EXPECT_NE(plan.find("TopN(limit=3"), std::string::npos) << plan;
  EXPECT_NE(plan.find("HashAggregate"), std::string::npos) << plan;
  EXPECT_NE(plan.find("HashJoin"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Scan(emp"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Scan(dept"), std::string::npos) << plan;
  // The salary predicate was pushed into the emp scan.
  EXPECT_NE(plan.find("pred=($2 > 50"), std::string::npos) << plan;
  // EXPLAIN executes nothing.
  EXPECT_FALSE(db_.Execute("EXPLAIN DELETE FROM emp").ok());
}

TEST_F(SqlEndToEndTest, ConcurrentSqlTransactionsConflict) {
  auto t1 = db_.txn_manager()->Begin();
  auto t2 = db_.txn_manager()->Begin();
  ASSERT_TRUE(
      db_.ExecuteIn(t1.get(), "UPDATE emp SET salary = 1.0 WHERE id = 1")
          .ok());
  ASSERT_TRUE(
      db_.ExecuteIn(t2.get(), "UPDATE emp SET salary = 2.0 WHERE id = 1")
          .ok());
  ASSERT_TRUE(db_.txn_manager()->Commit(t1.get()).ok());
  EXPECT_TRUE(db_.txn_manager()->Commit(t2.get()).IsAborted());
  auto r = db_.Execute("SELECT salary FROM emp WHERE id = 1");
  EXPECT_DOUBLE_EQ(r->rows[0][0].AsDouble(), 1.0);  // first committer won
}

TEST_F(SqlEndToEndTest, AutocommitConflictSurfacesAsAborted) {
  // Autocommit UPDATE retries are the caller's job; the engine must
  // surface kAborted when a conflicting commit slips in between the
  // statement's snapshot and its commit. Simulate by racing two threads.
  std::atomic<int> aborted{0}, committed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 25; ++i) {
        auto r = db_.Execute("UPDATE emp SET salary = salary + 1.0 "
                             "WHERE id = 2");
        if (r.ok()) {
          committed.fetch_add(1);
        } else if (r.status().IsAborted()) {
          aborted.fetch_add(1);
        } else {
          ADD_FAILURE() << r.status().ToString();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  // Exactly the committed increments are reflected: no lost updates.
  auto r = db_.Execute("SELECT salary FROM emp WHERE id = 2");
  EXPECT_DOUBLE_EQ(r->rows[0][0].AsDouble(), 120.0 + committed.load());
  EXPECT_EQ(committed.load() + aborted.load(), 100);
}

TEST_F(SqlEndToEndTest, QueryResultToString) {
  auto r = db_.Execute("SELECT id, dept FROM emp ORDER BY id LIMIT 2");
  ASSERT_TRUE(r.ok());
  std::string s = r->ToString();
  EXPECT_NE(s.find("id"), std::string::npos);
  EXPECT_NE(s.find("eng"), std::string::npos);
}

TEST_F(SqlEndToEndTest, MergeAllKeepsResultsStable) {
  auto before = db_.Execute("SELECT dept, COUNT(*) FROM emp GROUP BY dept "
                            "ORDER BY dept");
  ASSERT_TRUE(before.ok());
  size_t merged = db_.MergeAll();
  EXPECT_GT(merged, 0u);
  auto after = db_.Execute("SELECT dept, COUNT(*) FROM emp GROUP BY dept "
                           "ORDER BY dept");
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(before->rows.size(), after->rows.size());
  for (size_t i = 0; i < before->rows.size(); ++i) {
    EXPECT_EQ(before->rows[i][0].AsString(), after->rows[i][0].AsString());
    EXPECT_EQ(before->rows[i][1].AsInt64(), after->rows[i][1].AsInt64());
  }
}

TEST_F(SqlEndToEndTest, ExplainAnalyzeReportsOperatorStats) {
  auto r = db_.Execute(
      "EXPLAIN ANALYZE SELECT dept, COUNT(*), AVG(salary) FROM emp "
      "WHERE salary > 75 GROUP BY dept ORDER BY dept");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->columns, (std::vector<std::string>{"operator", "est_rows",
                                                  "rows", "batches",
                                                  "time_ms"}));
  ASSERT_GE(r->rows.size(), 2u);  // at least sort/agg over a scan
  // The root operator emitted the query's 3 group rows; the scan produced
  // the 4 rows passing the filter.
  bool saw_nonzero_rows = false;
  bool saw_scan = false;
  for (const Row& row : r->rows) {
    ASSERT_EQ(row.size(), 5u);
    if (row[2].AsInt64() > 0) saw_nonzero_rows = true;
    if (row[0].AsString().find("Scan(emp") != std::string::npos) {
      saw_scan = true;
      EXPECT_EQ(row[2].AsInt64(), 4);  // rows out of the filtered scan
      EXPECT_GE(row[3].AsInt64(), 1);  // at least one batch
    }
  }
  EXPECT_TRUE(saw_nonzero_rows);
  EXPECT_TRUE(saw_scan);
#ifndef OLTAP_OBS_DISABLED
  // Some operator must have measured non-zero wall time.
  bool saw_nonzero_time = false;
  for (const Row& row : r->rows) {
    if (row[4].AsDouble() > 0) saw_nonzero_time = true;
  }
  EXPECT_TRUE(saw_nonzero_time);
#endif
}

TEST_F(SqlEndToEndTest, ExplainAnalyzeParseErrors) {
  EXPECT_FALSE(db_.Execute("EXPLAIN ANALYZE INSERT INTO emp VALUES "
                           "(9, 'x', 1.0)")
                   .ok());
}

TEST_F(SqlEndToEndTest, ShowStatsExposesEngineMetrics) {
  // The SetUp inserts committed through the transaction manager, so the
  // global commit counter is non-zero by the time SHOW STATS runs.
  auto r = db_.Execute("SHOW STATS");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->columns, (std::vector<std::string>{"metric", "value"}));
  std::map<std::string, Value> by_name;
  for (const Row& row : r->rows) {
    ASSERT_EQ(row.size(), 2u);
    by_name[row[0].AsString()] = row[1];
  }
  // Core metrics are pre-registered, so they appear even at zero — the
  // dashboard contract. (The registry is process-global and shared across
  // tests, so only presence and monotonicity are asserted.)
  for (const char* name :
       {"txn.commits", "txn.aborts", "mvcc.versions_installed",
        "wal.records", "wal.batches", "wal.fsyncs", "wal.sealed",
        "wal.batch_size.count", "wal.group_wait_us.count", "merge.runs",
        "2pc.commits", "net.messages",
        "raft.messages", "storage.freshness_lag_us", "storage.delta_rows",
        "wm.queue_depth.oltp", "wal.fsync_ns.p99", "wal.append_ns.count",
        "wm.latency_us.oltp.p99", "wm.latency_us.olap.p99",
        "txn.commit_ns.count"}) {
    EXPECT_TRUE(by_name.count(name)) << "missing metric: " << name;
  }
#ifndef OLTAP_OBS_DISABLED
  EXPECT_GT(by_name["txn.commits"].AsInt64(), 0);
  // This database holds unmerged delta rows, so freshness lag is live.
  EXPECT_GT(by_name["storage.delta_rows"].AsInt64(), 0);
  EXPECT_GT(by_name["storage.freshness_lag_us"].AsInt64(), 0);
#endif
}

// A torn append seals the database's log; SHOW STATS surfaces it as
// wal.sealed = 1 (refreshed from this database's own Wal), so an operator
// sees the dead log before the next commit fails.
TEST(SqlShowStatsTest, SealedWalSurfacesInShowStats) {
  Wal wal;
  Database db(&wal);
  ASSERT_TRUE(db.Execute("CREATE TABLE t (id BIGINT NOT NULL, v VARCHAR(8), "
                         "PRIMARY KEY (id))")
                  .ok());

  auto stat_value = [&](const char* name) {
    auto r = db.Execute("SHOW STATS");
    EXPECT_TRUE(r.ok());
    for (const Row& row : r->rows) {
      if (row[0].AsString() == name) return row[1].AsInt64();
    }
    ADD_FAILURE() << "metric missing: " << name;
    return int64_t{-1};
  };
  EXPECT_EQ(stat_value("wal.sealed"), 0);

  {
    FailpointConfig cfg;
    cfg.status = Status::Unavailable("injected torn append");
    ScopedFailpoint armed("wal.append.torn", cfg);
    EXPECT_FALSE(db.Execute("INSERT INTO t VALUES (1, 'x')").ok());
  }
  ASSERT_TRUE(wal.sealed());
  EXPECT_EQ(stat_value("wal.sealed"), 1);
}

}  // namespace
}  // namespace oltap
