// End-to-end integration: concurrent OLTP + analytics + merges over one
// Database, plus crash-recovery equivalence through the WAL — the
// "operational analytics" promise exercised across every layer at once.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "sql/session.h"
#include "txn/wal.h"

namespace oltap {
namespace {

TEST(IntegrationTest, ConcurrentIngestAnalyticsAndMerge) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE events (id BIGINT NOT NULL, "
                         "kind TEXT, amount DOUBLE, PRIMARY KEY (id)) "
                         "FORMAT DUAL")
                  .ok());

  std::atomic<bool> stop{false};
  std::atomic<int64_t> inserted{0};
  std::atomic<int> analytic_errors{0};
  std::atomic<int> monotonicity_violations{0};

  // Writer: transactional inserts with amount == 1.0 each, so SUM == COUNT.
  std::thread writer([&] {
    Rng rng(1);
    int64_t id = 0;
    const char* kinds[] = {"click", "view", "buy"};
    while (!stop.load(std::memory_order_acquire)) {
      auto txn = db.txn_manager()->Begin();
      bool ok = true;
      for (int i = 0; i < 10; ++i) {
        Table* t = db.catalog()->GetTable("events");
        Row row{Value::Int64(id + i), Value::String(kinds[rng.Uniform(3)]),
                Value::Double(1.0)};
        if (!txn->Insert(t, std::move(row)).ok()) {
          ok = false;
          break;
        }
      }
      if (ok && db.txn_manager()->Commit(txn.get()).ok()) {
        id += 10;
        inserted.store(id, std::memory_order_release);
      }
    }
  });

  // Analyst: SUM(amount) must equal COUNT(*) in every snapshot, and the
  // count can never exceed what the writer reports afterwards.
  std::thread analyst([&] {
    while (!stop.load(std::memory_order_acquire)) {
      auto r = db.Execute("SELECT COUNT(*), SUM(amount) FROM events");
      if (!r.ok()) {
        analytic_errors.fetch_add(1);
        continue;
      }
      int64_t count = r->rows[0][0].AsInt64();
      double sum = r->rows[0][1].is_null() ? 0 : r->rows[0][1].AsDouble();
      if (static_cast<double>(count) != sum) analytic_errors.fetch_add(1);
      // The writer publishes `inserted` after Commit returns, so one
      // 10-row batch may be committed-but-unpublished when we read it.
      int64_t committed_after = inserted.load(std::memory_order_acquire);
      if (count > committed_after + 10) monotonicity_violations.fetch_add(1);
      if (count % 10 != 0) analytic_errors.fetch_add(1);  // atomic batches
    }
  });

  // Merger: continuous delta merges respecting active snapshots.
  std::thread merger([&] {
    while (!stop.load(std::memory_order_acquire)) {
      db.MergeAll();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  stop.store(true);
  writer.join();
  analyst.join();
  merger.join();

  EXPECT_EQ(analytic_errors.load(), 0);
  EXPECT_EQ(monotonicity_violations.load(), 0);
  ASSERT_GT(inserted.load(), 0);
  auto final_count = db.Execute("SELECT COUNT(*) FROM events");
  ASSERT_TRUE(final_count.ok());
  EXPECT_EQ(final_count->rows[0][0].AsInt64(), inserted.load());
}

TEST(IntegrationTest, WalRecoveryReproducesQueryResults) {
  Wal wal;
  std::string create =
      "CREATE TABLE accounts (id BIGINT NOT NULL, region TEXT, "
      "balance DOUBLE, PRIMARY KEY (id)) FORMAT COLUMN";
  std::vector<std::string> queries = {
      "SELECT COUNT(*), SUM(balance) FROM accounts",
      "SELECT region, COUNT(*) AS n, SUM(balance) AS total FROM accounts "
      "GROUP BY region ORDER BY region",
      "SELECT id, balance FROM accounts WHERE balance > 500.0 "
      "ORDER BY balance DESC LIMIT 5",
  };

  std::vector<QueryResult> original;
  {
    Database db(&wal);
    ASSERT_TRUE(db.Execute(create).ok());
    Rng rng(3);
    const char* regions[] = {"na", "eu", "ap"};
    for (int64_t i = 0; i < 300; ++i) {
      ASSERT_TRUE(db.Execute("INSERT INTO accounts VALUES (" +
                             std::to_string(i) + ", '" +
                             regions[rng.Uniform(3)] + "', " +
                             std::to_string(rng.NextDouble() * 1000) + ")")
                      .ok());
    }
    ASSERT_TRUE(db.Execute("UPDATE accounts SET balance = balance * 2.0 "
                           "WHERE region = 'eu'")
                    .ok());
    ASSERT_TRUE(db.Execute("DELETE FROM accounts WHERE balance < 100.0").ok());
    db.MergeAll();
    for (const std::string& q : queries) {
      auto r = db.Execute(q);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      original.push_back(std::move(r).value());
    }
  }

  // Recover into a fresh database from the log and re-run every query.
  Database recovered;
  ASSERT_TRUE(recovered.Execute(create).ok());
  auto stats = recovered.RecoverFromWal(wal.buffer());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_FALSE(stats->truncated_tail);

  for (size_t q = 0; q < queries.size(); ++q) {
    auto r = recovered.Execute(queries[q]);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->rows.size(), original[q].rows.size()) << queries[q];
    for (size_t i = 0; i < r->rows.size(); ++i) {
      ASSERT_EQ(r->rows[i].size(), original[q].rows[i].size());
      for (size_t c = 0; c < r->rows[i].size(); ++c) {
        EXPECT_EQ(r->rows[i][c].ToString(), original[q].rows[i][c].ToString())
            << queries[q] << " row " << i << " col " << c;
      }
    }
  }
}

TEST(IntegrationTest, SnapshotStableWhileMergesAndWritesProceed) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (id BIGINT NOT NULL, v BIGINT, "
                         "PRIMARY KEY (id)) FORMAT COLUMN")
                  .ok());
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                           ", 1)")
                    .ok());
  }
  // Open a long-running snapshot.
  auto long_txn = db.txn_manager()->Begin();
  auto before = db.ExecuteIn(long_txn.get(), "SELECT COUNT(*) FROM t");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->rows[0][0].AsInt64(), 100);

  // Concurrent writes and merges.
  for (int64_t i = 100; i < 200; ++i) {
    ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                           ", 1)")
                    .ok());
  }
  ASSERT_TRUE(db.Execute("DELETE FROM t WHERE id < 50").ok());
  db.MergeAll();
  db.MergeAll();

  // The long transaction still sees exactly its snapshot.
  auto after = db.ExecuteIn(long_txn.get(), "SELECT COUNT(*) FROM t");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->rows[0][0].AsInt64(), 100);

  // A fresh transaction sees the new world.
  auto fresh = db.Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->rows[0][0].AsInt64(), 150);
  db.txn_manager()->Commit(long_txn.get());
}

}  // namespace
}  // namespace oltap
