#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "storage/row.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace oltap {
namespace {

TEST(ValueTest, NullOrdersFirst) {
  EXPECT_LT(Value::Null(), Value::Int64(-100));
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, IntComparisons) {
  EXPECT_LT(Value::Int64(1), Value::Int64(2));
  EXPECT_EQ(Value::Int64(5), Value::Int64(5));
  EXPECT_LT(Value::Int64(-3), Value::Int64(0));
}

TEST(ValueTest, CrossNumericComparison) {
  EXPECT_LT(Value::Int64(1), Value::Double(1.5));
  EXPECT_EQ(Value::Int64(2).Compare(Value::Double(2.0)), 0);
  EXPECT_GT(Value::Double(3.1), Value::Int64(3));
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value::String("apple"), Value::String("banana"));
  EXPECT_EQ(Value::String("x"), Value::String("x"));
}

TEST(ValueTest, HashEqualValuesEqualHashes) {
  EXPECT_EQ(Value::Int64(42).Hash(), Value::Int64(42).Hash());
  EXPECT_EQ(Value::String("hi").Hash(), Value::String("hi").Hash());
  EXPECT_NE(Value::Int64(1).Hash(), Value::Int64(2).Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Int64(7).ToString(), "7");
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::String("abc").ToString(), "abc");
  EXPECT_EQ(Value::Bool(true).AsBool(), true);
}

TEST(SchemaTest, BuilderAndLookup) {
  Schema s = SchemaBuilder()
                 .AddInt64("id", false)
                 .AddString("name")
                 .AddDouble("score")
                 .SetKey({"id"})
                 .Build();
  EXPECT_EQ(s.num_columns(), 3u);
  EXPECT_EQ(s.FindColumn("name"), 1);
  EXPECT_EQ(s.FindColumn("missing"), -1);
  EXPECT_TRUE(s.HasKey());
  EXPECT_EQ(s.key_columns(), std::vector<int>{0});
  EXPECT_FALSE(s.column(0).nullable);
  EXPECT_TRUE(s.column(1).nullable);
}

TEST(SchemaTest, CompositeKey) {
  Schema s = SchemaBuilder()
                 .AddInt64("w", false)
                 .AddInt64("d", false)
                 .AddInt64("id", false)
                 .SetKey({"w", "d", "id"})
                 .Build();
  EXPECT_EQ(s.key_columns().size(), 3u);
  EXPECT_EQ(s.ToString(), "(w INT64 NOT NULL, d INT64 NOT NULL, id INT64 NOT NULL)");
}

// Property: EncodeKey is memcmp-order-preserving over tuples.
TEST(KeyEncodingTest, OrderPreservingInt64) {
  Schema s = SchemaBuilder().AddInt64("k", false).SetKey({"k"}).Build();
  Rng rng(5);
  std::vector<int64_t> values = {INT64_MIN, -1000, -1, 0, 1, 1000, INT64_MAX};
  for (int i = 0; i < 500; ++i) {
    values.push_back(static_cast<int64_t>(rng.Next()));
  }
  std::sort(values.begin(), values.end());
  for (size_t i = 1; i < values.size(); ++i) {
    std::string a = EncodeKey(s, Row{Value::Int64(values[i - 1])});
    std::string b = EncodeKey(s, Row{Value::Int64(values[i])});
    EXPECT_LE(a, b) << values[i - 1] << " vs " << values[i];
  }
}

TEST(KeyEncodingTest, OrderPreservingDouble) {
  Schema s = SchemaBuilder().AddDouble("k", false).SetKey({"k"}).Build();
  std::vector<double> values = {-1e30, -2.5, -0.0, 0.0, 1e-10, 3.7, 1e30};
  for (size_t i = 1; i < values.size(); ++i) {
    std::string a = EncodeKey(s, Row{Value::Double(values[i - 1])});
    std::string b = EncodeKey(s, Row{Value::Double(values[i])});
    EXPECT_LE(a, b) << values[i - 1] << " vs " << values[i];
  }
}

TEST(KeyEncodingTest, OrderPreservingStringsWithEmbeddedNul) {
  Schema s = SchemaBuilder().AddString("k", false).SetKey({"k"}).Build();
  std::vector<std::string> values = {"",        std::string("\0", 1),
                                     "a",       std::string("a\0b", 3),
                                     "ab",      "abc",
                                     "b"};
  std::sort(values.begin(), values.end());
  for (size_t i = 1; i < values.size(); ++i) {
    std::string a = EncodeKey(s, Row{Value::String(values[i - 1])});
    std::string b = EncodeKey(s, Row{Value::String(values[i])});
    EXPECT_LT(a, b);
  }
}

TEST(KeyEncodingTest, CompositeOrdering) {
  Schema s = SchemaBuilder()
                 .AddInt64("a", false)
                 .AddString("b", false)
                 .SetKey({"a", "b"})
                 .Build();
  // (1,"z") < (2,"a"): first component dominates.
  std::string k1 = EncodeKey(s, Row{Value::Int64(1), Value::String("z")});
  std::string k2 = EncodeKey(s, Row{Value::Int64(2), Value::String("a")});
  EXPECT_LT(k1, k2);
  // Equal first component: second decides.
  std::string k3 = EncodeKey(s, Row{Value::Int64(2), Value::String("b")});
  EXPECT_LT(k2, k3);
}

TEST(KeyEncodingTest, PrefixStringIsNotPrefixProblem) {
  // "ab" vs "abc": terminator must make the shorter key order first and
  // prevent prefix collision.
  Schema s = SchemaBuilder()
                 .AddString("a", false)
                 .AddString("b", false)
                 .SetKey({"a", "b"})
                 .Build();
  std::string k1 =
      EncodeKey(s, Row{Value::String("ab"), Value::String("z")});
  std::string k2 =
      EncodeKey(s, Row{Value::String("abc"), Value::String("a")});
  EXPECT_NE(k1, k2);
  EXPECT_LT(k1, k2);
}

TEST(KeyEncodingTest, NullSortsBeforeValues) {
  std::vector<int> cols = {0};
  std::string null_key = EncodeKeyColumns(Row{Value::Null()}, cols);
  std::string min_key =
      EncodeKeyColumns(Row{Value::Int64(INT64_MIN)}, cols);
  EXPECT_LT(null_key, min_key);
}

TEST(VersionVisibilityTest, CommittedWindow) {
  RowVersion v(Row{Value::Int64(1)});
  v.begin.store(10);
  v.end.store(20);
  EXPECT_FALSE(VersionVisible(v, 9, 0));
  EXPECT_TRUE(VersionVisible(v, 10, 0));
  EXPECT_TRUE(VersionVisible(v, 19, 0));
  EXPECT_FALSE(VersionVisible(v, 20, 0));
}

TEST(VersionVisibilityTest, UncommittedInsertVisibleOnlyToOwner) {
  RowVersion v(Row{Value::Int64(1)});
  v.begin.store(MakeTxnMarker(77));
  EXPECT_TRUE(VersionVisible(v, 100, 77));
  EXPECT_FALSE(VersionVisible(v, 100, 78));
}

TEST(VersionVisibilityTest, UncommittedDeleteHidesFromOwnerOnly) {
  RowVersion v(Row{Value::Int64(1)});
  v.begin.store(5);
  v.end.store(MakeTxnMarker(9));
  EXPECT_FALSE(VersionVisible(v, 100, 9));
  EXPECT_TRUE(VersionVisible(v, 100, 10));
}

}  // namespace
}  // namespace oltap
