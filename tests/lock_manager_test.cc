#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "txn/lock_manager.h"

namespace oltap {
namespace {

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, "k", LockManager::Mode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(2, "k", LockManager::Mode::kShared).ok());
  EXPECT_EQ(lm.num_locked_keys(), 1u);
  lm.ReleaseAll(1);
  lm.ReleaseAll(2);
  EXPECT_EQ(lm.num_locked_keys(), 0u);
}

TEST(LockManagerTest, ExclusiveBlocksYoungerRequester) {
  LockManager lm;
  // Older txn 1 holds X; younger txn 2 must die (wait-die).
  EXPECT_TRUE(lm.Acquire(1, "k", LockManager::Mode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(2, "k", LockManager::Mode::kShared).IsAborted());
  EXPECT_EQ(lm.num_deaths(), 1u);
  lm.ReleaseAll(1);
}

TEST(LockManagerTest, OlderRequesterWaitsForYoungerHolder) {
  LockManager lm;
  // Younger txn 5 holds X; older txn 2 waits until release.
  ASSERT_TRUE(lm.Acquire(5, "k", LockManager::Mode::kExclusive).ok());
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    EXPECT_TRUE(lm.Acquire(2, "k", LockManager::Mode::kExclusive).ok());
    acquired.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  lm.ReleaseAll(5);
  waiter.join();
  EXPECT_TRUE(acquired.load());
  lm.ReleaseAll(2);
}

TEST(LockManagerTest, ReentrantAcquire) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, "k", LockManager::Mode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(1, "k", LockManager::Mode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(1, "k", LockManager::Mode::kShared).ok());
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.num_locked_keys(), 0u);
}

TEST(LockManagerTest, UpgradeWhenSoleHolder) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, "k", LockManager::Mode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(1, "k", LockManager::Mode::kExclusive).ok());
  // Now exclusive: a younger shared requester dies.
  EXPECT_TRUE(lm.Acquire(9, "k", LockManager::Mode::kShared).IsAborted());
  lm.ReleaseAll(1);
}

TEST(LockManagerTest, WaitDiePreventsDeadlockUnderStress) {
  LockManager lm;
  constexpr int kThreads = 8;
  constexpr int kKeys = 6;
  std::atomic<uint64_t> next_txn{1};
  std::atomic<int> completed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t + 1);
      for (int i = 0; i < 200; ++i) {
        uint64_t txn = next_txn.fetch_add(1);
        // Acquire two random keys in random order: the classic deadlock
        // recipe that wait-die must resolve without hanging.
        std::string k1 = "key" + std::to_string(rng.Uniform(kKeys));
        std::string k2 = "key" + std::to_string(rng.Uniform(kKeys));
        Status s1 = lm.Acquire(txn, k1, LockManager::Mode::kExclusive);
        if (s1.ok()) {
          Status s2 = lm.Acquire(txn, k2, LockManager::Mode::kExclusive);
          if (s2.ok()) completed.fetch_add(1);
        }
        lm.ReleaseAll(txn);
      }
    });
  }
  for (auto& t : threads) t.join();  // would hang on deadlock
  EXPECT_GT(completed.load(), 0);
  EXPECT_EQ(lm.num_locked_keys(), 0u);
}

TEST(TwoPLSessionTest, BodyRunsUnderLocks) {
  LockManager lm;
  TwoPLSession session(&lm);
  int executed = 0;
  Status st = session.Run(1, {"r1", "r2"}, {"w1"}, [&] {
    ++executed;
    EXPECT_EQ(lm.num_locked_keys(), 3u);
    return Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(executed, 1);
  EXPECT_EQ(lm.num_locked_keys(), 0u);
}

TEST(TwoPLSessionTest, VictimReleasesEverything) {
  LockManager lm;
  TwoPLSession session(&lm);
  // Txn 1 (older) holds w1; younger txn 7 must die and release all.
  ASSERT_TRUE(lm.Acquire(1, "w1", LockManager::Mode::kExclusive).ok());
  bool body_ran = false;
  Status st = session.Run(7, {}, {"w0", "w1"}, [&] {
    body_ran = true;
    return Status::OK();
  });
  EXPECT_TRUE(st.IsAborted());
  EXPECT_FALSE(body_ran);
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.num_locked_keys(), 0u);
}

TEST(TwoPLSessionTest, SerializesConflictingCounters) {
  LockManager lm;
  int64_t counter = 0;  // protected only by the 2PL locks
  constexpr int kThreads = 4;
  std::atomic<uint64_t> next_txn{1};
  std::atomic<int> successes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      TwoPLSession session(&lm);
      for (int i = 0; i < 500; ++i) {
        while (true) {
          uint64_t txn = next_txn.fetch_add(1);
          Status st = session.Run(txn, {}, {"counter"}, [&] {
            ++counter;
            return Status::OK();
          });
          if (st.ok()) {
            successes.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * 500);
  EXPECT_EQ(successes.load(), kThreads * 500);
}

}  // namespace
}  // namespace oltap
