#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "failpoint_fixture.h"
#include "common/rng.h"
#include "storage/catalog.h"
#include "txn/checkpoint.h"
#include "txn/transaction_manager.h"
#include "txn/wal.h"

namespace oltap {
namespace {

// Randomized crash-recovery torture: rounds of commit traffic with
// injected torn/failed WAL appends and torn/failed checkpoint writes,
// then recovery via RecoverFromCheckpointAndLog (falling back through
// older checkpoints when the newest is torn), verified against a shadow
// in-memory model for exact equality. This is the end-to-end proof that
// the durability path loses exactly the transactions whose commit failed
// and nothing else.

constexpr Timestamp kFarFuture = 1'000'000'000;

Schema TortureSchema() {
  return SchemaBuilder()
      .AddInt64("id", false)
      .AddString("tag")
      .AddDouble("v")
      .SetKey({"id"})
      .Build();
}

Row MakeRow(int64_t id, const std::string& tag, double v) {
  return Row{Value::Int64(id), Value::String(tag), Value::Double(v)};
}

std::unique_ptr<Catalog> FreshCatalog() {
  auto catalog = std::make_unique<Catalog>();
  EXPECT_TRUE(
      catalog->CreateTable("t", TortureSchema(), TableFormat::kColumn).ok());
  return catalog;
}

// key (encoded PK) -> full row, compared value-by-value via ToString.
using Shadow = std::map<std::string, Row>;

Shadow Snapshot(const Catalog& catalog) {
  Shadow out;
  const Table* table = catalog.GetTable("t");
  table->ScanVisible(kFarFuture, [&](const Row& row) {
    out[EncodeKey(table->schema(), row)] = row;
  });
  return out;
}

void ExpectShadowEquality(const Shadow& recovered, const Shadow& shadow) {
  ASSERT_EQ(recovered.size(), shadow.size());
  auto it = recovered.begin();
  auto jt = shadow.begin();
  for (; it != recovered.end(); ++it, ++jt) {
    ASSERT_EQ(it->first, jt->first);
    ASSERT_EQ(it->second.size(), jt->second.size());
    for (size_t c = 0; c < it->second.size(); ++c) {
      EXPECT_EQ(it->second[c].ToString(), jt->second[c].ToString())
          << "key " << it->first << " col " << c;
    }
  }
}

class RecoveryTortureTest : public FailpointTest {};

TEST_F(RecoveryTortureTest, RandomizedCrashRecoverRounds) {
  constexpr int kRounds = 24;
  int torn_wal_rounds = 0;
  int failed_checkpoint_writes = 0;
  int torn_checkpoint_images = 0;
  int fallback_recoveries = 0;

  for (int round = 0; round < kRounds; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    FailpointRegistry::Get().DisableAll();
    Rng rng(9000 + round);

    Wal wal;  // the in-memory buffer is this round's "disk"
    auto catalog = FreshCatalog();
    TransactionManager tm(catalog.get(), &wal);
    Table* table = catalog->GetTable("t");

    Shadow shadow;
    std::vector<int64_t> live_ids;
    // Checkpoint images found on "disk" at crash time, oldest first.
    // Some are torn (crash during the checkpoint write).
    std::vector<std::string> images;

    // Arm this round's WAL fault: torn append, clean append error, or
    // none (crash with an intact log). skip may exceed the round's
    // traffic, which also yields a clean-crash round.
    int fault_flavor = static_cast<int>(rng.Uniform(3));
    const char* fault_site = fault_flavor == 0   ? "wal.append.torn"
                             : fault_flavor == 1 ? "wal.append.error"
                                                 : nullptr;
    if (fault_site != nullptr) {
      FailpointConfig cfg;
      cfg.skip = static_cast<int>(rng.UniformRange(3, 70));
      cfg.max_fires = 1;
      cfg.status = Status::Unavailable(std::string("injected: ") + fault_site);
      FailpointRegistry::Get().Enable(fault_site, cfg);
    }

    int64_t next_id = 0;
    bool crashed = false;
    const int max_commits = 40 + static_cast<int>(rng.Uniform(30));
    for (int commit = 0; commit < max_commits && !crashed; ++commit) {
      // Occasionally checkpoint, sometimes with an injected tear.
      if (commit > 0 && rng.Bernoulli(0.12)) {
        bool tear = rng.Bernoulli(0.3);
        if (tear) {
          FailpointConfig cfg;
          cfg.max_fires = 1;
          FailpointRegistry::Get().Enable("checkpoint.write.torn", cfg);
        }
        auto image =
            WriteCheckpoint(*catalog, tm.oracle()->CurrentReadTs());
        if (!image.ok()) {
          // The round's WAL fault fired inside the checkpoint writer:
          // nothing reached disk, and the process died mid-checkpoint.
          ++failed_checkpoint_writes;
          crashed = true;
          break;
        }
        if (tear) ++torn_checkpoint_images;
        images.push_back(std::move(image).value());
      }

      // One transaction of 1-3 ops over distinct keys.
      auto txn = tm.Begin();
      struct Staged {
        enum { kPut, kErase } action;
        int64_t id;
        Row row;
      };
      std::vector<Staged> staged;
      std::vector<int64_t> used;
      int nops = 1 + static_cast<int>(rng.Uniform(3));
      for (int op = 0; op < nops; ++op) {
        double roll = rng.NextDouble();
        if (roll < 0.5 || live_ids.empty()) {
          int64_t id = next_id++;
          Row row = MakeRow(id, rng.AlphaString(1, 8), rng.NextDouble());
          ASSERT_TRUE(txn->Insert(table, row).ok());
          staged.push_back({Staged::kPut, id, std::move(row)});
        } else {
          int64_t id = live_ids[rng.Uniform(live_ids.size())];
          bool clashes = false;
          for (int64_t u : used) clashes |= (u == id);
          if (clashes) continue;
          if (roll < 0.8) {
            Row row = MakeRow(id, rng.AlphaString(1, 8), rng.NextDouble());
            ASSERT_TRUE(txn->Update(table, row).ok());
            staged.push_back({Staged::kPut, id, std::move(row)});
          } else {
            ASSERT_TRUE(txn->Delete(table, MakeRow(id, "", 0)).ok());
            staged.push_back({Staged::kErase, id, Row{}});
          }
          used.push_back(id);
        }
      }
      Status st = tm.Commit(txn.get());
      if (!st.ok()) {
        // Only the injected WAL fault may fail a commit in this
        // single-threaded workload, and it is the crash point: the
        // transaction is not in the shadow and must not be recovered.
        ASSERT_TRUE(st.IsUnavailable()) << st.ToString();
        if (fault_flavor == 0) ++torn_wal_rounds;
        crashed = true;
        break;
      }
      for (Staged& s : staged) {
        std::string key = EncodeKey(table->schema(), MakeRow(s.id, "", 0));
        if (s.action == Staged::kPut) {
          if (shadow.count(key) == 0) live_ids.push_back(s.id);
          shadow[key] = std::move(s.row);
        } else {
          shadow.erase(key);
          for (size_t i = 0; i < live_ids.size(); ++i) {
            if (live_ids[i] == s.id) {
              live_ids.erase(live_ids.begin() + static_cast<long>(i));
              break;
            }
          }
        }
      }
    }

    // --- Crash. Recover from the newest checkpoint that restores
    // cleanly (torn ones are detected as Corruption), else full replay.
    FailpointRegistry::Get().DisableAll();
    const std::string disk = wal.buffer();
    std::unique_ptr<Catalog> recovered;
    Wal::ReplayStats stats;
    bool done = false;
    for (size_t i = images.size(); i > 0 && !done; --i) {
      auto attempt = FreshCatalog();
      auto r = RecoverFromCheckpointAndLog(images[i - 1], disk,
                                           attempt.get());
      if (r.ok()) {
        recovered = std::move(attempt);
        stats = *r;
        done = true;
      } else {
        ASSERT_EQ(r.status().code(), StatusCode::kCorruption);
        ++fallback_recoveries;
      }
    }
    if (!done) {
      recovered = FreshCatalog();
      auto r = RecoverFromCheckpointAndLog("", disk, recovered.get());
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      stats = *r;
    }

    ExpectShadowEquality(Snapshot(*recovered), shadow);

    // The recovered engine must accept new commits.
    Wal wal2;
    TransactionManager tm2(recovered.get(), &wal2);
    tm2.AdvanceTo(stats.max_commit_ts);
    Table* rt = recovered->GetTable("t");
    auto txn = tm2.Begin();
    int64_t fresh_id = 10'000'000 + round;
    ASSERT_TRUE(txn->Insert(rt, MakeRow(fresh_id, "post", 1.0)).ok());
    ASSERT_TRUE(tm2.Commit(txn.get()).ok());
    Row out;
    EXPECT_TRUE(rt->Lookup(EncodeKey(rt->schema(), MakeRow(fresh_id, "", 0)),
                           kFarFuture, &out));
  }

  // The seeds above must actually exercise the adversity, not skate by.
  EXPECT_GT(torn_wal_rounds, 0);
  EXPECT_GT(torn_checkpoint_images, 0);
  EXPECT_GT(fallback_recoveries, 0);
  (void)failed_checkpoint_writes;
}

}  // namespace
}  // namespace oltap
