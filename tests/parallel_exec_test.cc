#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "exec/parallel/morsel.h"
#include "obs/metrics.h"
#include "sched/workload_manager.h"
#include "sql/session.h"
#include "storage/row.h"
#include "workload/chbench.h"
#include "workload/driver.h"

namespace oltap {
namespace {

// ---------------------------------------------------------------------
// ThreadPool::ParallelForChunked (satellite: chunked-range dispatch).
// ---------------------------------------------------------------------

TEST(ParallelExecChunkedTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelForChunked(hits.size(), [&](size_t begin, size_t end) {
    ASSERT_LE(begin, end);
    for (size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelExecChunkedTest, ChunkCountBoundedByThreads) {
  ThreadPool pool(3);
  std::atomic<size_t> calls{0};
  pool.ParallelForChunked(100, [&](size_t, size_t) {
    calls.fetch_add(1, std::memory_order_relaxed);
  });
  // One invocation per chunk, not per index.
  EXPECT_LE(calls.load(), 3u);
  EXPECT_GE(calls.load(), 1u);
}

TEST(ParallelExecChunkedTest, EmptyAndTinyRanges) {
  ThreadPool pool(4);
  std::atomic<size_t> calls{0};
  pool.ParallelForChunked(0, [&](size_t, size_t) {
    calls.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(calls.load(), 0u);
  std::atomic<int> sum{0};
  pool.ParallelForChunked(1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      sum.fetch_add(static_cast<int>(i) + 1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(sum.load(), 1);
}

TEST(ParallelExecChunkedTest, ParallelForStillPerIndex) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelExecWorkersTest, RunOnWorkersAllParticipate) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<size_t> ids;
  std::thread::id caller = std::this_thread::get_id();
  bool caller_was_worker0 = false;
  RunOnWorkers(&pool, 4, [&](size_t w) {
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(w);
    if (w == 0 && std::this_thread::get_id() == caller) {
      caller_was_worker0 = true;
    }
  });
  EXPECT_EQ(ids.size(), 4u);
  EXPECT_TRUE(caller_was_worker0);

  // dop <= 1 or no pool: inline on the caller.
  std::atomic<size_t> solo{0};
  RunOnWorkers(nullptr, 8, [&](size_t w) {
    EXPECT_EQ(w, 0u);
    solo.fetch_add(1);
  });
  RunOnWorkers(&pool, 1, [&](size_t w) {
    EXPECT_EQ(w, 0u);
    solo.fetch_add(1);
  });
  EXPECT_EQ(solo.load(), 2u);
}

// ---------------------------------------------------------------------
// SQL-level determinism: parallel execution must be byte-identical to
// serial at any DOP.
// ---------------------------------------------------------------------

std::vector<std::string> Render(const QueryResult& r) {
  std::vector<std::string> out;
  out.reserve(r.rows.size());
  for (const Row& row : r.rows) out.push_back(RowToString(row));
  return out;
}

// Runs `sql` serial (max_dop=1) and parallel (max_dop=dop) and expects
// byte-identical row streams.
void ExpectSameResult(Database* db, const std::string& sql, size_t dop) {
  ASSERT_TRUE(db->Execute("SET max_dop = 1").ok());
  auto serial = db->Execute(sql);
  ASSERT_TRUE(serial.ok()) << sql << ": " << serial.status().ToString();
  ASSERT_TRUE(db->Execute("SET max_dop = " + std::to_string(dop)).ok());
  auto parallel = db->Execute(sql);
  ASSERT_TRUE(parallel.ok()) << sql << ": " << parallel.status().ToString();
  EXPECT_EQ(Render(*serial), Render(*parallel)) << sql;
}

class ParallelExecSqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pool_ = std::make_unique<ThreadPool>(3);
    db_.set_exec_pool(pool_.get());
    ASSERT_TRUE(db_.Execute("CREATE TABLE big (k INT, grp INT, v INT, "
                            "d DOUBLE, s STRING, PRIMARY KEY (k)) "
                            "FORMAT COLUMN")
                    .ok());
    // 6000 rows in one transaction: values with duplicates, negatives,
    // NULLs in both group and value columns.
    auto txn = db_.txn_manager()->Begin();
    for (int i = 0; i < 6000; ++i) {
      std::string grp =
          (i % 97 == 0) ? "NULL" : std::to_string(i % 7);
      std::string v = (i % 53 == 0) ? "NULL" : std::to_string(i % 101 - 50);
      std::string row = "(" + std::to_string(i) + ", " + grp + ", " + v +
                        ", " + std::to_string((i % 13) * 0.25) + ", 's" +
                        std::to_string(i % 11) + "')";
      ASSERT_TRUE(
          db_.ExecuteIn(txn.get(), "INSERT INTO big VALUES " + row).ok());
    }
    ASSERT_TRUE(db_.txn_manager()->Commit(txn.get()).ok());
    // Move the bulk into the main fragment, then leave a small tail in
    // the delta so every scan exercises the trailing delta slot too.
    db_.MergeAll();
    for (int i = 6000; i < 6100; ++i) {
      ASSERT_TRUE(db_.Execute("INSERT INTO big VALUES (" +
                              std::to_string(i) + ", 3, 7, 0.5, 'tail')")
                      .ok());
    }
    ASSERT_TRUE(db_.Execute("ANALYZE").ok());
  }

  std::unique_ptr<ThreadPool> pool_;
  Database db_;
};

TEST_F(ParallelExecSqlTest, ScanDeterministic) {
  ExpectSameResult(&db_, "SELECT k, v, s FROM big", 4);
  ExpectSameResult(&db_,
                   "SELECT k, d FROM big WHERE v > 10 AND k < 5500", 4);
  // Residual predicate the pushdown cannot absorb (column vs column).
  ExpectSameResult(&db_, "SELECT k FROM big WHERE v > grp", 4);
  // DOP larger than the pool still works (extra morsel claims queue).
  ExpectSameResult(&db_, "SELECT k, v FROM big WHERE v >= 0", 16);
}

TEST_F(ParallelExecSqlTest, ScanParallelPlanShape) {
  ASSERT_TRUE(db_.Execute("SET max_dop = 4").ok());
  auto plan = db_.Execute("EXPLAIN SELECT k FROM big WHERE v > 0");
  ASSERT_TRUE(plan.ok());
  std::string text;
  for (const Row& r : plan->rows) text += r[0].AsString() + "\n";
  EXPECT_NE(text.find("ParallelScan"), std::string::npos) << text;
  EXPECT_NE(text.find("dop=4"), std::string::npos) << text;

  // Serial knob: no parallel operators.
  ASSERT_TRUE(db_.Execute("SET max_dop = 1").ok());
  plan = db_.Execute("EXPLAIN SELECT k FROM big WHERE v > 0");
  ASSERT_TRUE(plan.ok());
  text.clear();
  for (const Row& r : plan->rows) text += r[0].AsString() + "\n";
  EXPECT_EQ(text.find("Parallel"), std::string::npos) << text;

  // Legacy planner path must stay serial even with the knob up.
  ASSERT_TRUE(db_.Execute("SET max_dop = 4").ok());
  ASSERT_TRUE(db_.Execute("SET optimizer = off").ok());
  plan = db_.Execute("EXPLAIN SELECT k FROM big WHERE v > 0");
  ASSERT_TRUE(plan.ok());
  text.clear();
  for (const Row& r : plan->rows) text += r[0].AsString() + "\n";
  EXPECT_EQ(text.find("Parallel"), std::string::npos) << text;
  ASSERT_TRUE(db_.Execute("SET optimizer = on").ok());
}

TEST_F(ParallelExecSqlTest, AggDeterministic) {
  // Mergeable: parallel pre-aggregation with slot-ordered merge.
  ExpectSameResult(&db_,
                   "SELECT grp, COUNT(*), SUM(v), MIN(v), MAX(s) FROM big "
                   "GROUP BY grp",
                   4);
  // Group order must match serial first-seen order (no ORDER BY).
  ExpectSameResult(&db_, "SELECT s, COUNT(v) FROM big GROUP BY s", 4);
  // Global aggregate, including over zero rows.
  ExpectSameResult(&db_, "SELECT COUNT(*), MIN(k), MAX(k) FROM big", 4);
  ExpectSameResult(&db_,
                   "SELECT COUNT(*), SUM(v) FROM big WHERE k < 0", 4);
  // Order-sensitive float folds stay serial over the parallel child and
  // must still be bit-exact (same row stream, same fold order).
  ExpectSameResult(&db_, "SELECT grp, AVG(v), SUM(d) FROM big GROUP BY grp",
                   4);
  ExpectSameResult(&db_, "SELECT AVG(d) FROM big", 4);
}

TEST_F(ParallelExecSqlTest, AggPlanGating) {
  ASSERT_TRUE(db_.Execute("SET max_dop = 4").ok());
  auto plan = db_.Execute(
      "EXPLAIN SELECT grp, COUNT(*), SUM(v) FROM big GROUP BY grp");
  ASSERT_TRUE(plan.ok());
  std::string text;
  for (const Row& r : plan->rows) text += r[0].AsString() + "\n";
  EXPECT_NE(text.find("ParallelHashAggregate"), std::string::npos) << text;

  // AVG is not mergeable: serial aggregate over the parallel scan.
  plan = db_.Execute("EXPLAIN SELECT grp, AVG(v) FROM big GROUP BY grp");
  ASSERT_TRUE(plan.ok());
  text.clear();
  for (const Row& r : plan->rows) text += r[0].AsString() + "\n";
  EXPECT_EQ(text.find("ParallelHashAggregate"), std::string::npos) << text;
  EXPECT_NE(text.find("HashAggregate"), std::string::npos) << text;
  EXPECT_NE(text.find("ParallelScan"), std::string::npos) << text;
}

TEST_F(ParallelExecSqlTest, JoinDeterministicWithDuplicateBuildKeys) {
  // Build side with duplicate keys: every s value repeats, so the join
  // fan-out exercises duplicate-match emission order.
  ASSERT_TRUE(db_.Execute("CREATE TABLE tags (s STRING, w INT, "
                          "PRIMARY KEY (s)) FORMAT ROW")
                  .ok());
  for (int i = 0; i < 11; ++i) {
    ASSERT_TRUE(db_.Execute("INSERT INTO tags VALUES ('s" +
                            std::to_string(i) + "', " +
                            std::to_string(i * 10) + ")")
                    .ok());
  }
  ASSERT_TRUE(db_.Execute("ANALYZE").ok());
  ExpectSameResult(&db_,
                   "SELECT t.w, b.k FROM tags t JOIN big b ON t.s = b.s "
                   "WHERE b.k < 300",
                   4);
  ExpectSameResult(&db_,
                   "SELECT t.s, COUNT(*), SUM(b.v) FROM tags t "
                   "JOIN big b ON t.s = b.s GROUP BY t.s",
                   4);
}

TEST_F(ParallelExecSqlTest, OrderByLimitDeterministic) {
  ExpectSameResult(&db_,
                   "SELECT grp, COUNT(*) AS n FROM big GROUP BY grp "
                   "ORDER BY n DESC, grp LIMIT 5",
                   4);
  ExpectSameResult(&db_, "SELECT k, v FROM big ORDER BY v DESC LIMIT 20",
                   4);
  ExpectSameResult(&db_, "SELECT DISTINCT s FROM big", 4);
}

TEST_F(ParallelExecSqlTest, ExplainAnalyzeReportsDopAndRows) {
  ASSERT_TRUE(db_.Execute("SET max_dop = 4").ok());
  auto r = db_.Execute("EXPLAIN ANALYZE SELECT grp, COUNT(*) FROM big "
                       "GROUP BY grp");
  ASSERT_TRUE(r.ok());
  bool saw_parallel_scan = false;
  for (const Row& row : r->rows) {
    std::string op = row[0].AsString();
    if (op.find("ParallelScan") != std::string::npos) {
      saw_parallel_scan = true;
      EXPECT_NE(op.find("dop=4"), std::string::npos) << op;
      // Worker-produced rows are accounted even though the operator is
      // driven (never pulled through NextBatchTimed).
      EXPECT_GT(row[2].AsInt64(), 0) << op;
    }
  }
  EXPECT_TRUE(saw_parallel_scan);
}

TEST_F(ParallelExecSqlTest, MorselCountersAdvance) {
  auto* reg = obs::MetricsRegistry::Default();
  uint64_t q0 = reg->GetCounter("exec.morsel.parallel_queries")->Value();
  uint64_t d0 = reg->GetCounter("exec.morsel.dispatched")->Value();
  uint64_t r0 = reg->GetCounter("exec.morsel.rows")->Value();
  ASSERT_TRUE(db_.Execute("SET max_dop = 4").ok());
  ASSERT_TRUE(db_.Execute("SELECT COUNT(*) FROM big").ok());
  EXPECT_GT(reg->GetCounter("exec.morsel.parallel_queries")->Value(), q0);
  EXPECT_GT(reg->GetCounter("exec.morsel.dispatched")->Value(), d0);
  EXPECT_GT(reg->GetCounter("exec.morsel.rows")->Value(), r0);
}

// ---------------------------------------------------------------------
// Admission-governed DOP.
// ---------------------------------------------------------------------

TEST_F(ParallelExecSqlTest, GrantCapsDop) {
  ASSERT_TRUE(db_.Execute("SET max_dop = 4").ok());

  QueryGrant serial_grant;
  serial_grant.max_dop = 1;
  auto plan = db_.Execute("EXPLAIN SELECT k FROM big WHERE v > 0",
                          serial_grant);
  ASSERT_TRUE(plan.ok());
  std::string text;
  for (const Row& r : plan->rows) text += r[0].AsString() + "\n";
  EXPECT_EQ(text.find("Parallel"), std::string::npos) << text;

  QueryGrant capped;
  capped.max_dop = 2;
  uint64_t limited0 = obs::MetricsRegistry::Default()
                          ->GetCounter("exec.morsel.dop_limited")
                          ->Value();
  plan = db_.Execute("EXPLAIN SELECT k FROM big WHERE v > 0", capped);
  ASSERT_TRUE(plan.ok());
  text.clear();
  for (const Row& r : plan->rows) text += r[0].AsString() + "\n";
  EXPECT_NE(text.find("dop=2"), std::string::npos) << text;
  EXPECT_GT(obs::MetricsRegistry::Default()
                ->GetCounter("exec.morsel.dop_limited")
                ->Value(),
            limited0);

  // An uncapped grant leaves the session knob in charge.
  QueryGrant open;
  auto result = db_.Execute("SELECT COUNT(*) FROM big", open);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][0].AsInt64(), 6100);
}

TEST(ParallelExecGrantTest, WorkloadManagerStampsDop) {
  WorkloadManager::Options opts;
  opts.num_workers = 1;
  opts.max_parallel_dop = 6;
  opts.degraded_dop = 1;
  opts.olap_degrade_threshold = 1;  // degrade when >= 1 already queued
  WorkloadManager wm(opts);

  std::mutex mu;
  std::vector<QueryGrant> grants;
  auto record = [&](const CancellationToken&, const QueryGrant& g) {
    std::lock_guard<std::mutex> lock(mu);
    grants.push_back(g);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return Status::OK();
  };
  // First submission occupies the worker; the next ones queue deep
  // enough to be admitted degraded.
  std::vector<WorkloadManager::Submission> subs;
  for (int i = 0; i < 4; ++i) {
    subs.push_back(wm.SubmitBudgeted(QueryClass::kOlap,
                                     WorkloadManager::QuerySpec{}, record));
  }
  for (auto& s : subs) ASSERT_TRUE(s.done.get().ok());
  wm.Drain();

  ASSERT_EQ(grants.size(), 4u);
  size_t degraded = 0;
  for (const QueryGrant& g : grants) {
    if (g.degraded) {
      ++degraded;
      EXPECT_EQ(g.max_dop, 1u);
    } else {
      EXPECT_EQ(g.max_dop, 6u);
    }
  }
  EXPECT_GE(degraded, 1u);
}

// ---------------------------------------------------------------------
// CH analytic suite: byte-identical parallel vs serial, quiesced and
// under concurrent TPC-C DML.
// ---------------------------------------------------------------------

CHConfig ParallelCHConfig() {
  CHConfig config;
  config.warehouses = 2;
  config.districts_per_warehouse = 5;
  config.customers_per_district = 40;
  config.items = 200;
  config.initial_orders_per_district = 50;
  // Disjoint write sets for the concurrent test.
  config.remote_item_prob = 0.0;
  config.remote_payment_prob = 0.0;
  return config;
}

TEST(ParallelExecCHTest, AllQueriesDeterministicQuiesced) {
  Database db;
  CHBenchmark bench(&db, ParallelCHConfig());
  ASSERT_TRUE(bench.CreateTables().ok());
  ASSERT_TRUE(bench.Load().ok());
  db.MergeAll();
  ASSERT_TRUE(db.Execute("ANALYZE").ok());

  ThreadPool pool(3);
  db.set_exec_pool(&pool);

  // The comparison is only meaningful if the suite actually plans
  // parallel operators at this scale.
  ASSERT_TRUE(db.Execute("SET max_dop = 4").ok());
  bool any_parallel_plan = false;
  for (const auto& aq : CHBenchmark::Queries()) {
    auto plan = db.Execute("EXPLAIN " + aq.sql);
    ASSERT_TRUE(plan.ok()) << aq.name;
    for (const Row& r : plan->rows) {
      if (r[0].AsString().find("Parallel") != std::string::npos) {
        any_parallel_plan = true;
      }
    }
  }
  EXPECT_TRUE(any_parallel_plan);

  const size_t n = CHBenchmark::Queries().size();
  for (size_t q = 0; q < n; ++q) {
    ASSERT_TRUE(db.Execute("SET max_dop = 1").ok());
    auto serial = bench.RunQuery(q);
    ASSERT_TRUE(serial.ok()) << CHBenchmark::Queries()[q].name;
    ASSERT_TRUE(db.Execute("SET max_dop = 4").ok());
    auto parallel = bench.RunQuery(q);
    ASSERT_TRUE(parallel.ok()) << CHBenchmark::Queries()[q].name;
    EXPECT_EQ(Render(*serial), Render(*parallel))
        << CHBenchmark::Queries()[q].name;
  }
}

TEST(ParallelExecCHTest, DeterministicUnderConcurrentTpcc) {
  Database db;
  CHBenchmark bench(&db, ParallelCHConfig());
  ASSERT_TRUE(bench.CreateTables().ok());
  ASSERT_TRUE(bench.Load().ok());
  db.MergeAll();
  ASSERT_TRUE(db.Execute("ANALYZE").ok());

  ThreadPool pool(3);
  db.set_exec_pool(&pool);

  // Concurrent TPC-C DML through the full driver (merge daemon included),
  // long enough to overlap every snapshot pair below.
  DriverOptions dopts;
  dopts.oltp_workers = 3;
  dopts.olap_workers = 0;
  dopts.wm_workers = 3;
  dopts.duration_ms = 4000;
  dopts.bind_home_warehouse = true;
  dopts.seed = 11;
  ConcurrentDriver driver(&bench, dopts);
  DriverReport report;
  std::thread churn([&] { report = driver.Run(); });

  // Same-snapshot pairs: both executions run inside one transaction, so
  // they see the same MVCC snapshot while the driver commits around them.
  // The session DOP knob is toggled between the two runs.
  // One full pass over the suite is guaranteed even when sanitizers slow
  // execution below the driver's pace; extra pairs fill the time window.
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(3000);
  const size_t n = CHBenchmark::Queries().size();
  size_t q = 0;
  size_t pairs = 0;
  while (pairs < n || std::chrono::steady_clock::now() < deadline) {
    const std::string& sql = CHBenchmark::Queries()[q].sql;
    auto txn = db.txn_manager()->Begin();
    ASSERT_TRUE(db.Execute("SET max_dop = 1").ok());
    auto serial = db.ExecuteIn(txn.get(), sql);
    ASSERT_TRUE(db.Execute("SET max_dop = 4").ok());
    auto parallel = db.ExecuteIn(txn.get(), sql);
    ASSERT_TRUE(db.txn_manager()->Commit(txn.get()).ok());
    ASSERT_TRUE(serial.ok()) << CHBenchmark::Queries()[q].name;
    ASSERT_TRUE(parallel.ok()) << CHBenchmark::Queries()[q].name;
    ASSERT_EQ(Render(*serial), Render(*parallel))
        << CHBenchmark::Queries()[q].name << " under concurrent DML";
    q = (q + 1) % n;
    ++pairs;
  }
  churn.join();
  EXPECT_GE(pairs, n);
  EXPECT_GT(report.txns.total(), 0u);
}

}  // namespace
}  // namespace oltap
