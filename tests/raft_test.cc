#include <gtest/gtest.h>

#include <set>
#include <string>

#include "dist/cluster.h"
#include "dist/raft.h"

namespace oltap {
namespace {

TEST(RaftTest, SingleNodeSelfElectsAndCommits) {
  RaftCluster::Options opts;
  opts.num_nodes = 1;
  RaftCluster cluster(opts);
  int leader = cluster.AwaitLeader();
  ASSERT_EQ(leader, 0);
  ASSERT_TRUE(cluster.Propose("x"));
  cluster.Step(5);
  ASSERT_EQ(cluster.CommittedAt(0).size(), 1u);
  EXPECT_EQ(cluster.CommittedAt(0)[0].payload, "x");
}

TEST(RaftTest, ThreeNodeElection) {
  RaftCluster::Options opts;
  opts.num_nodes = 3;
  RaftCluster cluster(opts);
  int leader = cluster.AwaitLeader();
  ASSERT_GE(leader, 0);
  // Exactly one leader at the highest term.
  int leaders = 0;
  for (int i = 0; i < 3; ++i) {
    if (cluster.node(i)->role() == RaftNode::Role::kLeader &&
        cluster.node(i)->term() == cluster.node(leader)->term()) {
      ++leaders;
    }
  }
  EXPECT_EQ(leaders, 1);
}

TEST(RaftTest, ReplicationReachesAllNodes) {
  RaftCluster::Options opts;
  opts.num_nodes = 5;
  RaftCluster cluster(opts);
  ASSERT_GE(cluster.AwaitLeader(), 0);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(cluster.Propose("entry-" + std::to_string(i)));
    cluster.Step(2);
  }
  cluster.Step(50);
  for (int n = 0; n < 5; ++n) {
    ASSERT_EQ(cluster.CommittedAt(n).size(), 20u) << "node " << n;
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(cluster.CommittedAt(n)[i].payload,
                "entry-" + std::to_string(i));
    }
  }
  EXPECT_TRUE(cluster.CheckCommittedPrefixConsistency());
}

TEST(RaftTest, CommitsSurviveMessageLoss) {
  RaftCluster::Options opts;
  opts.num_nodes = 3;
  opts.drop_probability = 0.15;
  opts.seed = 7;
  RaftCluster cluster(opts);
  ASSERT_GE(cluster.AwaitLeader(2000), 0);
  int proposed = 0;
  for (int round = 0; round < 400 && proposed < 30; ++round) {
    if (cluster.LeaderId() >= 0 &&
        cluster.Propose("p" + std::to_string(proposed))) {
      ++proposed;
    }
    cluster.Step(3);
  }
  cluster.Step(300);
  ASSERT_GT(proposed, 0);
  EXPECT_TRUE(cluster.CheckCommittedPrefixConsistency());
  // A majority must have committed a prefix of what was proposed.
  size_t best = 0;
  for (int n = 0; n < 3; ++n) {
    best = std::max(best, cluster.CommittedAt(n).size());
  }
  EXPECT_GT(best, 0u);
}

TEST(RaftTest, LeaderCrashTriggersReelection) {
  RaftCluster::Options opts;
  opts.num_nodes = 5;
  RaftCluster cluster(opts);
  int first = cluster.AwaitLeader();
  ASSERT_GE(first, 0);
  ASSERT_TRUE(cluster.Propose("before-crash"));
  cluster.Step(30);

  cluster.SetNodeDown(first);
  cluster.Step(100);
  int second = cluster.LeaderId();
  ASSERT_GE(second, 0);
  EXPECT_NE(second, first);
  ASSERT_TRUE(cluster.Propose("after-crash"));
  cluster.Step(50);
  // The new leader's commits extend the old committed prefix.
  EXPECT_TRUE(cluster.CheckCommittedPrefixConsistency());
  const auto& log = cluster.CommittedAt(second);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].payload, "before-crash");
  EXPECT_EQ(log[1].payload, "after-crash");
}

TEST(RaftTest, MinorityPartitionCannotCommit) {
  RaftCluster::Options opts;
  opts.num_nodes = 5;
  RaftCluster cluster(opts);
  int leader = cluster.AwaitLeader();
  ASSERT_GE(leader, 0);

  // Partition the leader plus one follower away from the majority.
  int buddy = (leader + 1) % 5;
  cluster.PartitionAway({leader, buddy});
  // Old leader may still accept proposals but can never commit them.
  cluster.node(leader)->Propose("doomed");
  cluster.Step(200);
  EXPECT_EQ(cluster.CommittedAt(leader).size(), 0u);

  // The majority side elects a fresh leader and commits.
  int new_leader = cluster.LeaderId();
  // LeaderId picks highest term; after partition the majority leader has a
  // higher term than the stale one.
  ASSERT_GE(new_leader, 0);
  ASSERT_TRUE(cluster.node(new_leader)->Propose("alive"));
  cluster.Step(100);
  EXPECT_GE(cluster.CommittedAt(new_leader).size(), 1u);

  // Heal: the doomed entry is overwritten, logs converge.
  cluster.Heal();
  cluster.Step(300);
  EXPECT_TRUE(cluster.CheckCommittedPrefixConsistency());
  for (int n = 0; n < 5; ++n) {
    ASSERT_GE(cluster.CommittedAt(n).size(), 1u) << "node " << n;
    EXPECT_EQ(cluster.CommittedAt(n)[0].payload, "alive");
  }
}

TEST(RaftTest, CrashedFollowerCatchesUpOnRestart) {
  RaftCluster::Options opts;
  opts.num_nodes = 3;
  RaftCluster cluster(opts);
  ASSERT_GE(cluster.AwaitLeader(), 0);
  int follower = (cluster.LeaderId() + 1) % 3;
  cluster.SetNodeDown(follower);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.Propose("while-down-" + std::to_string(i)));
    cluster.Step(5);
  }
  EXPECT_EQ(cluster.CommittedAt(follower).size(), 0u);
  cluster.SetNodeUp(follower);
  cluster.Step(200);
  ASSERT_EQ(cluster.CommittedAt(follower).size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(cluster.CommittedAt(follower)[i].payload,
              "while-down-" + std::to_string(i));
  }
  EXPECT_TRUE(cluster.CheckCommittedPrefixConsistency());
}

TEST(RaftTest, StaleTermMessagesRejected) {
  RaftNode node(0, 3, 1);
  // Bring the node to term 5 via a message.
  RaftMessage bump;
  bump.type = RaftMessage::Type::kAppendEntries;
  bump.from = 1;
  bump.to = 0;
  bump.term = 5;
  node.Receive(bump);
  node.TakeOutbox();
  EXPECT_EQ(node.term(), 5u);

  // A stale AppendEntries from term 3 gets a failure reply at term 5.
  RaftMessage stale;
  stale.type = RaftMessage::Type::kAppendEntries;
  stale.from = 2;
  stale.to = 0;
  stale.term = 3;
  node.Receive(stale);
  auto out = node.TakeOutbox();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, RaftMessage::Type::kAppendReply);
  EXPECT_FALSE(out[0].success);
  EXPECT_EQ(out[0].term, 5u);
}

TEST(RaftTest, VoteDeniedToStaleLog) {
  RaftNode node(0, 3, 1);
  // Give the node a log entry at term 2.
  RaftMessage append;
  append.type = RaftMessage::Type::kAppendEntries;
  append.from = 1;
  append.to = 0;
  append.term = 2;
  append.prev_log_index = 0;
  append.prev_log_term = 0;
  append.entries = {RaftLogEntry{2, "x"}};
  node.Receive(append);
  node.TakeOutbox();

  // Candidate with an older log (empty) must not get the vote.
  RaftMessage vote;
  vote.type = RaftMessage::Type::kRequestVote;
  vote.from = 2;
  vote.to = 0;
  vote.term = 3;
  vote.last_log_index = 0;
  vote.last_log_term = 0;
  node.Receive(vote);
  auto out = node.TakeOutbox();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].granted);
}

TEST(RaftTest, ProposeOnFollowerFails) {
  RaftNode node(0, 3, 1);
  EXPECT_FALSE(node.Propose("x"));
}

TEST(RaftTest, DuplicatedMessagesAreIdempotent) {
  RaftCluster::Options opts;
  opts.num_nodes = 3;
  opts.duplicate_probability = 0.3;
  opts.seed = 17;
  RaftCluster cluster(opts);
  ASSERT_GE(cluster.AwaitLeader(2000), 0);
  for (int i = 0; i < 15; ++i) {
    ASSERT_TRUE(cluster.Propose("d" + std::to_string(i)));
    cluster.Step(3);
  }
  cluster.Step(100);
  EXPECT_GT(cluster.messages_duplicated(), 0u);
  EXPECT_TRUE(cluster.CheckCommittedPrefixConsistency());
  // Duplicated AppendEntries must not duplicate committed entries.
  for (int n = 0; n < 3; ++n) {
    ASSERT_EQ(cluster.CommittedAt(n).size(), 15u) << "node " << n;
    for (int i = 0; i < 15; ++i) {
      EXPECT_EQ(cluster.CommittedAt(n)[i].payload, "d" + std::to_string(i));
    }
  }
}

TEST(RaftTest, CommittedPrefixHoldsUnderDropDuplicatePartitionChurn) {
  RaftCluster::Options opts;
  opts.num_nodes = 5;
  opts.drop_probability = 0.08;
  opts.duplicate_probability = 0.15;
  opts.seed = 203;
  RaftCluster cluster(opts);
  Rng rng(77);
  int proposed = 0;
  std::set<int> down;
  bool partitioned = false;
  for (int round = 0; round < 200; ++round) {
    cluster.Step(5);
    if (cluster.LeaderId() >= 0 && rng.Bernoulli(0.5)) {
      if (cluster.Propose("churn-" + std::to_string(proposed))) ++proposed;
    }
    // Flip a two-node partition on and off.
    if (rng.Bernoulli(0.05)) {
      if (partitioned) {
        cluster.Heal();
        partitioned = false;
      } else if (down.empty()) {
        int a = static_cast<int>(rng.Uniform(5));
        cluster.PartitionAway({a, (a + 1) % 5});
        partitioned = true;
      }
    }
    // Crash/restart one node at a time, keeping a majority alive.
    if (!partitioned && rng.Bernoulli(0.08)) {
      if (!down.empty()) {
        int up = *down.begin();
        cluster.SetNodeUp(up);
        down.erase(up);
      } else {
        int victim = static_cast<int>(rng.Uniform(5));
        cluster.SetNodeDown(victim);
        down.insert(victim);
      }
    }
  }
  if (partitioned) cluster.Heal();
  for (int n : down) cluster.SetNodeUp(n);
  cluster.Step(600);
  EXPECT_TRUE(cluster.CheckCommittedPrefixConsistency());
  EXPECT_GT(cluster.messages_duplicated(), 0u);
  EXPECT_GT(cluster.messages_dropped(), 0u);
  EXPECT_GT(proposed, 0);
  // Progress despite the churn: someone committed a non-trivial prefix.
  size_t best = 0;
  for (int n = 0; n < 5; ++n) {
    best = std::max(best, cluster.CommittedAt(n).size());
  }
  EXPECT_GT(best, 0u);
}

TEST(RaftTest, LongRunningChaosConvergence) {
  RaftCluster::Options opts;
  opts.num_nodes = 5;
  opts.drop_probability = 0.05;
  opts.seed = 99;
  RaftCluster cluster(opts);
  Rng rng(123);
  int proposed = 0;
  std::set<int> down;
  for (int round = 0; round < 150; ++round) {
    cluster.Step(5);
    if (cluster.LeaderId() >= 0 && rng.Bernoulli(0.5)) {
      if (cluster.Propose("c" + std::to_string(proposed))) ++proposed;
    }
    // Randomly crash/restart one node, keeping a majority alive.
    if (rng.Bernoulli(0.1)) {
      if (!down.empty() && rng.Bernoulli(0.6)) {
        int up = *down.begin();
        cluster.SetNodeUp(up);
        down.erase(up);
      } else if (down.size() < 2) {
        int victim = static_cast<int>(rng.Uniform(5));
        if (down.count(victim) == 0) {
          cluster.SetNodeDown(victim);
          down.insert(victim);
        }
      }
    }
  }
  for (int n : down) cluster.SetNodeUp(n);
  cluster.Step(500);
  EXPECT_TRUE(cluster.CheckCommittedPrefixConsistency());
  EXPECT_GT(proposed, 0);
}

}  // namespace
}  // namespace oltap
